package rules

// BuiltinSource is the concrete-syntax text of the rules pre-equipped with
// Chameleon — paper Table 2, expressed in the Fig. 4 language. The
// thresholds are the named parameters bound by DefaultParams ("the
// constants used in the rules are not shown, as they may be tuned per
// specific environment").
const BuiltinSource = `
// Time: a large volume of contains operations on a large-sized list is
// better handled by a hashed, insertion-ordered set.
ArrayList : #contains > X && maxSize > Y -> LinkedHashSet
    "Time: inefficient use of an ArrayList: large volume of contains operations on a large sized list"

// Time: random access by index on a linked list is linear; use an array.
LinkedList : #get(int) > X -> ArrayList
    "Time: inefficient use of a LinkedList: large volume of random accesses using get(i)"

// Space: linked-list entry overhead is not justified when middle/head
// insertion and removal are hardly performed. Restricted to contexts whose
// lists typically hold elements — mostly-empty contexts are the lazy
// rule's territory (an eager array is *worse* than an empty linked list).
LinkedList : (#addAt + #addAllAt + #removeAt + #removeFirst) < X && maxSize > 0 && emptyFraction < F -> ArrayList(maxSize)
    "Space: LinkedList overhead not justified when adding/removing elements from the middle/head of the list is hardly performed"

// Space: collections that never (or almost never) hold an element should
// allocate lazily. The distribution matters, not the mean: a context where
// 90% of instances stay empty (the bloat/PMD pathology) has a non-zero
// average maximal size but an emptyFraction near 1.
ArrayList : (maxSize == 0 || emptyFraction > F) && #allOps > 0 -> LazyArrayList
    "Space: redundant collection allocation - most instances stay empty"
LinkedList : (maxSize == 0 || emptyFraction > F) && #allOps > 0 -> LazyArrayList
    "Space: redundant collection allocation - most instances stay empty"
HashMap : (maxSize == 0 || emptyFraction > F) && #allOps > 0 -> LazyMap
    "Space: redundant collection allocation - most instances stay empty"
HashSet : (maxSize == 0 || emptyFraction > F) && #allOps > 0 -> LazySet
    "Space: redundant collection allocation - most instances stay empty"

// Concurrency: a context whose owner samples keep moving between
// goroutines is shared. These rules must come before the small-size rules
// below: a small-but-contended map wants shards, not an ArrayMap. The
// write-fraction guard on the copy-on-write targets keeps them out of
// write-heavy contexts, where every mutation recopies the backing.
HashMap : crossGoroutineFraction > G && #allOps > X -> ShardedHashMap
    "Time: map shared across goroutines - shard the table to cut lock contention"
HashSet : crossGoroutineFraction > G && #allOps > X && (#add + #remove + #clear) < W * #allOps -> CowHashSet
    "Time: read-mostly set shared across goroutines - copy-on-write makes reads lock-free"
ArrayList : crossGoroutineFraction > G && #allOps > X && (#add + #addAt + #set + #remove + #removeAt + #clear) < W * #allOps -> CowArrayList
    "Time: read-mostly list shared across goroutines - copy-on-write makes reads lock-free"

// Space/Time: small sets and maps are better backed by arrays.
HashSet : maxSize < Z && maxSize > 0 -> ArraySet(maxSize)
    "Space: ArraySet more efficient than an HashSet. Time: operations on a small array might be faster than on an HashSet"
HashMap : maxSize < Z && maxSize > 0 -> ArrayMap(maxSize)
    "Space: ArrayMap more efficient than an HashMap. Time: operations on a small array might be faster than on an HashMap"

// Lists that provably hold at most one element.
ArrayList : maxSize == 1 && (#addAt + #removeAt + #set) == 0 -> SingletonList
    "Space: list holds at most one element - use SingletonList"

// Space/Time: a collection that is never operated upon is redundant.
Collection : #allOps == 0 -> avoid
    "Space/Time: redundant collection - avoid allocation"

// Space/Time: a collection only ever used as a copy source is a temporary.
Collection : #allOps == #copied && #allOps > 0 -> eliminateCopies
    "Space/Time: redundant copying of collections - eliminate temporaries"

// Space/Time: growing past the initial capacity means repeated resizing;
// allocate at the observed maximal size up front.
Collection : maxSize > initialCapacity && maxSize > 0 -> setCapacity(maxSize)
    "Space/Time: incremental resizing - set initial capacity"

// Space: iterators created over empty collections are pure garbage.
Collection : emptyIterators > E -> removeIterator
    "Space: redundant iterator over empty collection - remove"
`

// DefaultParams binds the Table 2 thresholds:
//
//	X — "large volume of operations" cutoff (per-instance average count)
//	Y — "large sized" collection cutoff
//	Z — "small sized" collection cutoff (strictly below)
//	E — empty-iterator count worth flagging
//	S — stability (standard-deviation) bound for explicit stable() checks
//	F — fraction of instances that stay empty for the lazy-allocation rules
//	G — cross-goroutine access fraction above which a context counts as
//	    shared (well above the stack-growth noise floor of the goroutine
//	    identity hash)
//	W — write fraction below which a shared context counts as read-mostly
//	    (copy-on-write recopies the backing on every mutation)
var DefaultParams = Params{
	"X": 32,
	"Y": 32,
	"Z": 16,
	"E": 64,
	"S": 8,
	"F": 0.75,
	"G": 0.25,
	"W": 0.1,
}

// Builtin parses BuiltinSource. It panics on error — the source is part of
// the package and covered by tests.
func Builtin() *RuleSet {
	rs, err := Parse(BuiltinSource)
	if err != nil {
		panic("rules: builtin rule set does not parse: " + err.Error())
	}
	if errs := Check(rs, DefaultParams); len(errs) > 0 {
		panic("rules: builtin rule set does not check: " + errs[0].Error())
	}
	return rs
}

// ExtendedSource holds the opt-in rules for the specialized
// implementations beyond the paper's Table 2: the §5.4 partial-interface
// singly-linked list and the §4.2 Trove-style open-addressing structures.
// The open-addressing rules presume a well-distributed hash function —
// the guarantee the paper says is "hard to determine in Java" — which is
// why they are not part of the default set; they also demonstrate the
// explicit stable(...) stability syntax.
const ExtendedSource = `
// §5.4: the full List interface's backward-traversing list iterator is the
// only thing forcing doubly-linked entries. A context that never asks for
// one (and performs no positional surgery) can use 16-byte entries.
LinkedList : #listIterator == 0 && (#addAt + #removeAt + #set) == 0 && maxSize > 0 -> SinglyLinkedList
    "Space: no backward traversal or positional updates - singly-linked entries suffice"

// §4.2: open addressing removes the per-entry objects of chained hashing;
// worthwhile for maps too big for an ArrayMap, when sizes are stable.
HashMap : maxSize >= Z && stable(maxSize) < S -> OpenHashMap(maxSize)
    "Space: open-addressing map avoids per-entry objects (requires a well-distributed hash)"
HashSet : maxSize >= Z && stable(maxSize) < S -> OpenHashSet(maxSize)
    "Space: open-addressing set avoids per-entry objects (requires a well-distributed hash)"

// A big map that is mostly scanned wants dense sorted nodes, not a hash
// table: B-tree nodes pack entries into arrays (no per-entry objects) and
// iterate in key order. Requires an ordered key type; unordered keys fall
// back to chained hashing at construction.
HashMap : maxSize >= Z && #iterator > X -> BTreeMap(maxSize)
    "Space: B-tree nodes pack entries densely. Time: iteration scans sorted arrays in key order"
`

// Extended returns the builtin rules followed by the extension rules;
// earlier (builtin) rules keep priority.
func Extended() *RuleSet {
	rs := Builtin()
	ext, err := Parse(ExtendedSource)
	if err != nil {
		panic("rules: extended rule set does not parse: " + err.Error())
	}
	if errs := Check(ext, DefaultParams); len(errs) > 0 {
		panic("rules: extended rule set does not check: " + errs[0].Error())
	}
	rs.Rules = append(rs.Rules, ext.Rules...)
	return rs
}
