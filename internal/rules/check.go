package rules

import (
	"sort"

	"chameleon/internal/spec"
)

// Check statically validates a rule set against the operation and metric
// vocabularies and the given parameter environment: every #op/@op must name
// a known operation, every bare identifier must be a metric or a bound
// parameter, and replacement targets must be implementations compatible
// with the rule's source type. It returns every problem found.
func Check(rs *RuleSet, params Params) []error {
	var errs []error
	seen := map[string]int{} // rule identity (src : cond -> action) to 1-based index
	for i, r := range rs.Rules {
		errs = append(errs, checkRule(r, params)...)
		key := ruleIdentity(r)
		if first, dup := seen[key]; dup {
			errs = append(errs, errf(r.At,
				"duplicate of rule %d (line %d): identical srcType, condition and action", first, rs.Rules[first-1].At.Line))
		} else {
			seen[key] = i + 1
		}
	}
	return errs
}

// ruleIdentity renders the semantically significant parts of a rule — the
// message string is presentation only — for duplicate detection.
func ruleIdentity(r *Rule) string {
	return r.Src.String() + " : " + printCond(r.Cond, false) + " -> " + printAction(r.Act)
}

func checkRule(r *Rule, params Params) []error {
	var errs []error
	walkCond(r.Cond, func(c Cond) {
		if cmp, ok := c.(*Comparison); ok {
			walkExpr(cmp.L, func(e Expr) { errs = append(errs, checkExpr(e, params)...) })
			walkExpr(cmp.R, func(e Expr) { errs = append(errs, checkExpr(e, params)...) })
		}
	})
	if r.Act.Kind == ActReplace {
		src := r.Src
		impl := r.Act.Impl
		// A replacement must stay within the source ADT unless the source
		// is a concrete kind whose suggested fix crosses ADTs (the paper's
		// ArrayList -> LinkedHashSet rule does; it is advice the
		// programmer applies by also changing the declared ADT). Crossing
		// is allowed from concrete sources, rejected from abstract ones
		// where it would be unactionable.
		if src.IsAbstract() && src != spec.KindCollection && impl.Abstract() != src {
			errs = append(errs, errf(r.Act.At,
				"replacement %v does not implement source ADT %v", impl, src))
		}
	}
	switch r.Act.Kind {
	case ActAvoid, ActEliminateCopies, ActRemoveIterator:
		// The advisory fixes carry no capacity. The parser cannot produce
		// this shape, but programmatically built rule sets can.
		if r.Act.Capacity.Present {
			errs = append(errs, errf(r.Act.At, "%v does not take a capacity argument", r.Act.Kind))
		}
	}
	if r.Act.Capacity.Present && !r.Act.Capacity.FromMaxSize && r.Act.Capacity.Value < 0 {
		errs = append(errs, errf(r.Act.At, "negative capacity %d", r.Act.Capacity.Value))
	}
	return errs
}

func checkExpr(e Expr, params Params) []error {
	switch e := e.(type) {
	case *OpCount:
		if e.Name == "allOps" {
			return nil
		}
		if _, ok := spec.OpByName(e.Name); !ok {
			return []error{errf(e.At, "unknown operation %q", e.Name)}
		}
	case *OpVar:
		if _, ok := spec.OpByName(e.Name); !ok {
			return []error{errf(e.At, "unknown operation %q", e.Name)}
		}
	case *ParamRef:
		if _, ok := params[e.Name]; !ok {
			return []error{errf(e.At, "unbound parameter %q (not a metric; bind it in the parameter environment)", e.Name)}
		}
	case *StableRef:
		if !isMetricName(e.Name) {
			return []error{errf(e.At, "stable() argument %q is not a metric", e.Name)}
		}
	}
	return nil
}

// walkCond visits every condition node.
func walkCond(c Cond, f func(Cond)) {
	f(c)
	switch c := c.(type) {
	case *AndCond:
		walkCond(c.L, f)
		walkCond(c.R, f)
	case *OrCond:
		walkCond(c.L, f)
		walkCond(c.R, f)
	case *NotCond:
		walkCond(c.C, f)
	}
}

// walkExpr visits every expression node.
func walkExpr(e Expr, f func(Expr)) {
	f(e)
	if b, ok := e.(*BinaryExpr); ok {
		walkExpr(b.L, f)
		walkExpr(b.R, f)
	}
}

// ParamsOf reports the sorted set of parameter names referenced by a rule
// set (useful for validating an environment before evaluation).
func ParamsOf(rs *RuleSet) []string {
	seen := map[string]bool{}
	for _, r := range rs.Rules {
		walkCond(r.Cond, func(c Cond) {
			if cmp, ok := c.(*Comparison); ok {
				for _, side := range []Expr{cmp.L, cmp.R} {
					walkExpr(side, func(e Expr) {
						if p, ok := e.(*ParamRef); ok {
							seen[p.Name] = true
						}
					})
				}
			}
		})
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExplicitStables reports the set of metric names a rule checks stability
// for explicitly via stable(m); the evaluator exempts those metrics from
// the implicit stability gate (§3.3.1).
func ExplicitStables(r *Rule) map[string]bool {
	out := map[string]bool{}
	walkCond(r.Cond, func(c Cond) {
		if cmp, ok := c.(*Comparison); ok {
			for _, side := range []Expr{cmp.L, cmp.R} {
				walkExpr(side, func(e Expr) {
					if s, ok := e.(*StableRef); ok {
						out[s.Name] = true
					}
				})
			}
		}
	})
	return out
}

// MetricsOf reports the sorted set of metric names referenced by a rule
// (used by the evaluator's stability gating).
func MetricsOf(r *Rule) []string {
	seen := map[string]bool{}
	walkCond(r.Cond, func(c Cond) {
		if cmp, ok := c.(*Comparison); ok {
			for _, side := range []Expr{cmp.L, cmp.R} {
				walkExpr(side, func(e Expr) {
					if m, ok := e.(*MetricRef); ok {
						seen[m.Name] = true
					}
				})
			}
		}
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
