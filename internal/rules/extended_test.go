package rules

import (
	"testing"

	"chameleon/internal/spec"
)

func TestStableSyntaxParsesAndPrints(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize >= 16 && stable(maxSize) < 4 -> OpenHashMap")
	printed := PrintRule(r)
	r2, err := ParseRule(printed)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if PrintRule(r2) != printed {
		t.Fatalf("round trip unstable: %q vs %q", printed, PrintRule(r2))
	}
	and := r.Cond.(*AndCond)
	cmp := and.R.(*Comparison)
	sr, ok := cmp.L.(*StableRef)
	if !ok || sr.Name != "maxSize" {
		t.Fatalf("stable ref not parsed: %#v", cmp.L)
	}
}

func TestStableIsNotAKeyword(t *testing.T) {
	// "stable" without parentheses is an ordinary parameter name.
	r := mustParseRule(t, "HashMap : maxSize > stable -> ArrayMap")
	cmp := r.Cond.(*Comparison)
	if _, ok := cmp.R.(*ParamRef); !ok {
		t.Fatalf("bare 'stable' should be a ParamRef, got %#v", cmp.R)
	}
}

func TestStableCheck(t *testing.T) {
	rs, err := Parse("HashMap : stable(notAMetric) < 1 -> ArrayMap")
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(rs, DefaultParams); len(errs) == 0 {
		t.Fatal("stable() over unknown metric not caught")
	}
}

func TestExplicitStableOverridesImplicitGate(t *testing.T) {
	p := &fakeProfile{
		kind:      spec.KindHashMap,
		opMeans:   map[string]float64{"put": 40},
		metrics:   map[string]float64{"maxSize": 40},
		stability: map[string]float64{"maxSize": 30}, // wildly unstable
	}
	// Implicit gate blocks a size-conditioned rule...
	blocked := mustParseRule(t, "HashMap : maxSize > 10 -> OpenHashMap")
	if _, ok, _ := EvalRule(blocked, p, EvalOptions{}); ok {
		t.Fatal("implicit gate should block")
	}
	// ...but a rule that checks stability explicitly governs itself.
	explicit := mustParseRule(t, "HashMap : maxSize > 10 && stable(maxSize) < 50 -> OpenHashMap")
	if _, ok, _ := EvalRule(explicit, p, EvalOptions{}); !ok {
		t.Fatal("explicit stable() should bypass the implicit gate")
	}
	strict := mustParseRule(t, "HashMap : maxSize > 10 && stable(maxSize) < 5 -> OpenHashMap")
	if _, ok, _ := EvalRule(strict, p, EvalOptions{}); ok {
		t.Fatal("explicit stable() bound should still be enforced by the condition")
	}
}

func TestExplicitStables(t *testing.T) {
	r := mustParseRule(t, "HashMap : stable(maxSize) < 2 && stable(size) < 3 && maxSize > 1 -> ArrayMap")
	got := ExplicitStables(r)
	if !got["maxSize"] || !got["size"] || len(got) != 2 {
		t.Fatalf("explicit stables = %v", got)
	}
}

func TestExtendedRuleSet(t *testing.T) {
	ext := Extended()
	if len(ext.Rules) <= len(Builtin().Rules) {
		t.Fatal("extended set not larger than builtin")
	}

	// A large stable HashMap with no containsValue: OpenHashMap fires.
	bigMap := &fakeProfile{
		kind:    spec.KindHashMap,
		opMeans: map[string]float64{"put": 64, "get(Object)": 500},
		metrics: map[string]float64{"maxSize": 64, "initialCapacity": 64},
	}
	ms, err := Eval(ext, bigMap, EvalOptions{Params: DefaultParams})
	if err != nil {
		t.Fatal(err)
	}
	var sawOpen bool
	for _, m := range ms {
		if m.Rule.Act.Impl == spec.KindOpenHashMap {
			sawOpen = true
			if m.Capacity != 64 {
				t.Fatalf("open map capacity = %d", m.Capacity)
			}
		}
	}
	if !sawOpen {
		t.Fatalf("OpenHashMap rule did not fire: %v", ms)
	}

	// A forward-only LinkedList: SinglyLinkedList fires.
	fwdList := &fakeProfile{
		kind:    spec.KindLinkedList,
		opMeans: map[string]float64{"add": 20, "iterator": 5},
		metrics: map[string]float64{"maxSize": 20},
	}
	ms2, err := Eval(ext, fwdList, EvalOptions{Params: DefaultParams})
	if err != nil {
		t.Fatal(err)
	}
	var sawSLL bool
	for _, m := range ms2 {
		if m.Rule.Act.Impl == spec.KindSinglyLinkedList {
			sawSLL = true
		}
	}
	if !sawSLL {
		t.Fatalf("SinglyLinkedList rule did not fire: %v", ms2)
	}

	// The same list with listIterator use must NOT be suggested a
	// singly-linked implementation (§5.4's whole point).
	backList := &fakeProfile{
		kind:    spec.KindLinkedList,
		opMeans: map[string]float64{"add": 20, "listIterator": 2},
		metrics: map[string]float64{"maxSize": 20},
	}
	ms3, _ := Eval(ext, backList, EvalOptions{Params: DefaultParams})
	for _, m := range ms3 {
		if m.Rule.Act.Impl == spec.KindSinglyLinkedList {
			t.Fatal("SinglyLinkedList suggested despite listIterator use")
		}
	}
}
