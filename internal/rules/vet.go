package rules

import (
	"encoding/json"
	"fmt"
	"sort"

	"chameleon/internal/spec"
)

// This file is the semantic static-analysis pass over parsed rule sets:
// Vet. Where Check validates vocabulary (known operations and metrics,
// bound parameters, ADT-compatible replacements), Vet proves semantic
// properties — a rule that can never fire, a rule that can never be the
// primary suggestion, a comparison over a counter that is identically
// zero — using the interval machinery in intervals.go. Every verdict is
// conservative: Vet stays silent unless the defect is provable.

// Severity ranks a diagnostic. Errors mean the rule set cannot behave as
// written (a rule can never fire); warnings mean it almost certainly does
// not behave as intended.
type Severity int

const (
	// SevWarning flags a rule that is suspicious but still functional.
	SevWarning Severity = iota
	// SevError flags a rule that is provably inert as written.
	SevError
)

// String names the severity.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	default:
		return fmt.Errorf("unknown severity %q", name)
	}
	return nil
}

// Diagnostic codes; docs/ANALYSIS.md catalogues each with examples.
const (
	// CodeUnsatisfiable: the whole condition is provably false.
	CodeUnsatisfiable = "unsat"
	// CodeAlwaysTrue: a condition or comparison is provably true.
	CodeAlwaysTrue = "always-true"
	// CodeNeverTrue: one comparison is provably false (the whole
	// condition may still be satisfiable through a disjunction).
	CodeNeverTrue = "never-true"
	// CodeShadowed: an earlier rule matches strictly more contexts, so
	// this rule can never be the primary suggestion.
	CodeShadowed = "shadowed"
	// CodeVacuousOp: an operation counter outside the srcType's ADT
	// surface; the counter is identically zero.
	CodeVacuousOp = "vacuous-op"
	// CodeSelfReplace: a replacement whose target equals the source with
	// no capacity change.
	CodeSelfReplace = "self-replace"
	// CodeZeroDivisor: a division whose divisor is constantly zero (the
	// language defines x / 0 = 0).
	CodeZeroDivisor = "zero-div"
	// CodeStableUnread: stable(m) bounds a metric the rule never reads.
	CodeStableUnread = "stable-unread"
	// CodeStableConflict: the implicit stability gate on a size metric
	// contradicts an explicit stable(...) lower bound.
	CodeStableConflict = "stable-conflict"
)

// Diagnostic is one positioned, machine-renderable Vet finding.
type Diagnostic struct {
	// Code identifies the lint (see the Code constants).
	Code string `json:"code"`
	// Severity is error or warning.
	Severity Severity `json:"severity"`
	// Pos locates the offending construct in the rule source.
	Pos Pos `json:"pos"`
	// Rule is the 1-based index of the rule in the set.
	Rule int `json:"rule"`
	// Message is the human-readable explanation.
	Message string `json:"message"`
	// Related locates a second involved construct (the shadowing rule),
	// when there is one.
	Related *Pos `json:"related,omitempty"`
}

// String renders the diagnostic in the CLI's text form:
// "line:col: severity [code] rule N: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s] rule %d: %s", d.Pos, d.Severity, d.Code, d.Rule, d.Message)
}

// Vet statically analyzes a rule set under the given parameter
// environment and reports every provable semantic defect. It assumes
// nothing Check verifies — unknown names simply widen the analysis — so it
// is safe on any parser-accepted input, but its verdicts are sharpest on
// a vocabulary-clean set. Diagnostics come back ordered by source
// position.
func Vet(rs *RuleSet, params Params) []Diagnostic {
	if rs == nil {
		return nil
	}
	if params == nil {
		params = Params{}
	}
	v := &vetter{params: params}
	for i, r := range rs.Rules {
		v.vetCondition(i, r)
		v.vetOps(i, r)
		v.vetAction(i, r)
		v.vetStability(i, r)
	}
	v.vetShadowing(rs)
	sort.SliceStable(v.diags, func(i, j int) bool {
		a, b := v.diags[i], v.diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
	return v.diags
}

type vetter struct {
	params Params
	diags  []Diagnostic
}

func (v *vetter) add(sev Severity, code string, pos Pos, rule int, format string, args ...any) *Diagnostic {
	v.diags = append(v.diags, Diagnostic{
		Code:     code,
		Severity: sev,
		Pos:      pos,
		Rule:     rule + 1,
		Message:  fmt.Sprintf(format, args...),
	})
	return &v.diags[len(v.diags)-1]
}

// vetCondition runs the interval/abstract analysis: unsatisfiable whole
// conditions (error), tautological conditions, and constant comparisons.
func (v *vetter) vetCondition(i int, r *Rule) {
	if r.Cond == nil {
		return
	}
	an := analyzeCond(r.Cond, v.params)
	unsat := an.known && !an.satisfiable()
	if unsat {
		v.add(SevError, CodeUnsatisfiable, r.Cond.Pos(), i,
			"condition %q can never be true: the rule never fires", printCond(r.Cond, false))
	} else if condAlwaysTrue(r.Cond, v.params) {
		v.add(SevWarning, CodeAlwaysTrue, r.Cond.Pos(), i,
			"condition %q is always true: the rule fires for every matching context", printCond(r.Cond, false))
	}
	walkCond(r.Cond, func(c Cond) {
		cmp, ok := c.(*Comparison)
		if !ok || Cond(cmp) == r.Cond {
			return // a single-comparison condition was covered above
		}
		li := exprInterval(cmp.L, v.params)
		ri := exprInterval(cmp.R, v.params)
		switch compareIvals(cmp.Op, li, ri) {
		case triAlways:
			v.add(SevWarning, CodeAlwaysTrue, cmp.At, i,
				"comparison %q is always true", printCond(cmp, false))
		case triNever:
			v.add(SevWarning, CodeNeverTrue, cmp.At, i,
				"comparison %q can never be true", printCond(cmp, false))
		}
	})
}

// vetOps flags operation counters outside the srcType's ADT surface: the
// profiler can never record them there, so the counter is identically
// zero and the comparison tests a constant.
func (v *vetter) vetOps(i int, r *Rule) {
	v.walkRuleExprs(r, func(e Expr) {
		var name string
		var sigil string
		switch e := e.(type) {
		case *OpCount:
			name, sigil = e.Name, "#"
		case *OpVar:
			name, sigil = e.Name, "@"
		default:
			return
		}
		if name == "allOps" {
			return
		}
		op, ok := spec.OpByName(name)
		if !ok {
			return // Check's territory
		}
		if !spec.OpApplies(op, r.Src) {
			v.add(SevWarning, CodeVacuousOp, e.Pos(), i,
				"%s%s is always zero for srcType %v (%s is not a %v operation)",
				sigil, name, r.Src, name, r.Src.Abstract())
		}
	})
}

// vetAction flags self-replacements and constant-zero divisors.
func (v *vetter) vetAction(i int, r *Rule) {
	if r.Act.Kind == ActReplace && r.Act.Impl == r.Src && !r.Act.Capacity.Present {
		v.add(SevWarning, CodeSelfReplace, r.Act.At, i,
			"replacing %v with itself changes nothing (add a capacity argument or delete the rule)", r.Src)
	}
	v.walkRuleExprs(r, func(e Expr) {
		b, ok := e.(*BinaryExpr)
		if !ok || b.Op != "/" {
			return
		}
		if d := exprInterval(b.R, v.params); d.isPoint() && d.lo == 0 {
			v.add(SevWarning, CodeZeroDivisor, b.At, i,
				"division by constant zero: the language defines x / 0 = 0, so %q is always 0",
				printExpr(b, false))
		}
	})
}

// vetStability flags stable(m) on metrics the rule never reads, and rules
// whose implicit stability gate (Definition 3.1: size metrics must have a
// standard deviation at most the evaluator's threshold) contradicts an
// explicit stable(...) lower bound. size and maxSize share one tracked
// deviation, so a rule that implicitly gates one while requiring the
// other's stable() above the threshold can never fire.
func (v *vetter) vetStability(i int, r *Rule) {
	metrics := map[string]bool{}
	for _, m := range MetricsOf(r) {
		metrics[m] = true
	}
	explicit := ExplicitStables(r)
	stablePos := map[string]Pos{}
	v.walkRuleExprs(r, func(e Expr) {
		if s, ok := e.(*StableRef); ok {
			if _, seen := stablePos[s.Name]; !seen {
				stablePos[s.Name] = s.At
			}
		}
	})
	for name, pos := range stablePos {
		if !metrics[name] {
			v.add(SevWarning, CodeStableUnread, pos, i,
				"stable(%s) bounds a metric the rule never reads", name)
		}
	}

	var gated []string
	for _, m := range []string{"size", "maxSize"} {
		if metrics[m] && !explicit[m] {
			gated = append(gated, m)
		}
	}
	if len(gated) == 0 {
		return
	}
	an := analyzeCond(r.Cond, v.params)
	if !an.known || !an.satisfiable() {
		return
	}
	thr := DefaultMaxSizeStdDev
	for _, s := range []string{"size", "maxSize"} {
		pos, hasStable := stablePos[s]
		if !hasStable {
			continue
		}
		contradictedAll := true
		for _, cj := range an.conjuncts {
			if cj.unsat {
				continue
			}
			b, ok := cj.env["stable("+s+")"]
			if !ok || !(b.lo > thr || (b.lo == thr && b.loOpen)) {
				contradictedAll = false
				break
			}
		}
		if contradictedAll {
			v.add(SevError, CodeStableConflict, pos, i,
				"condition requires stable(%s) > %v, but reading %s without stable(%s) imposes the implicit gate stable(%s) <= %v — size metrics share one deviation, so the rule never fires",
				s, thr, gated[0], gated[0], gated[0], thr)
		}
	}
}

// vetShadowing detects dead rules under the first-match-per-context
// priority semantics: if an earlier rule's srcType subsumes a later
// rule's and the later condition provably implies the earlier one (with a
// compatible stability gate), the later rule can never be the primary
// suggestion.
func (v *vetter) vetShadowing(rs *RuleSet) {
	gated := make([]map[string]bool, len(rs.Rules))
	for i, r := range rs.Rules {
		gated[i] = gatedMetrics(r)
	}
	for j := 1; j < len(rs.Rules); j++ {
		rj := rs.Rules[j]
		if rj.Cond == nil {
			continue
		}
		for i := 0; i < j; i++ {
			ri := rs.Rules[i]
			if ri.Cond == nil || !srcSubsumes(ri.Src, rj.Src) {
				continue
			}
			if !subsetOf(gated[i], gated[j]) {
				continue // rule i's stability gate could block where j fires
			}
			if !condImplies(rj.Cond, ri.Cond, v.params) {
				continue
			}
			d := v.add(SevWarning, CodeShadowed, rj.At, j,
				"rule is shadowed by rule %d (line %d): every context it matches already matches rule %d first, so it can never be the primary suggestion",
				i+1, ri.At.Line, i+1)
			related := ri.At
			d.Related = &related
			break
		}
	}
}

// walkRuleExprs visits every expression node in the rule's condition.
func (v *vetter) walkRuleExprs(r *Rule, f func(Expr)) {
	if r.Cond == nil {
		return
	}
	walkCond(r.Cond, func(c Cond) {
		if cmp, ok := c.(*Comparison); ok {
			walkExpr(cmp.L, f)
			walkExpr(cmp.R, f)
		}
	})
}

// gatedMetrics is the set of metrics the implicit stability gate applies
// to for a rule: everything the condition reads minus the explicitly
// stable-checked ones.
func gatedMetrics(r *Rule) map[string]bool {
	explicit := ExplicitStables(r)
	out := map[string]bool{}
	for _, m := range MetricsOf(r) {
		if !explicit[m] {
			out[m] = true
		}
	}
	return out
}

func subsetOf(a, b map[string]bool) bool {
	for m := range a {
		if !b[m] {
			return false
		}
	}
	return true
}

// srcSubsumes reports whether every kind matching pattern b also matches
// pattern a — i.e. a rule with srcType a matches a superset of the
// contexts a rule with srcType b matches.
func srcSubsumes(a, b spec.Kind) bool {
	if a == b {
		return true
	}
	for _, k := range spec.Kinds() {
		if k.Matches(b) && !k.Matches(a) {
			return false
		}
	}
	return true
}
