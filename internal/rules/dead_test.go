package rules

import (
	"testing"

	"chameleon/internal/spec"
)

func TestDeadForDeclared(t *testing.T) {
	rs, err := Parse(`ArrayList : #contains > 0 -> HashSet
HashMap : #get < 1 -> LazyMap
LinkedList : #get > 0 -> ArrayList`)
	if err != nil {
		t.Fatal(err)
	}
	dead := DeadForDeclared(rs, []spec.Kind{spec.KindArrayList, spec.KindHashMap})
	if len(dead) != 1 {
		t.Fatalf("dead rules = %d, want 1", len(dead))
	}
	if dead[0].Src != spec.KindLinkedList {
		t.Errorf("dead rule src = %v, want LinkedList", dead[0].Src)
	}
}

func TestDeadForDeclaredAbstractSrc(t *testing.T) {
	rs, err := Parse(`List : maxSize < 8 -> ArrayList
Set : maxSize < 8 -> ArraySet`)
	if err != nil {
		t.Fatal(err)
	}
	// A concrete list keeps the List rule live but not the Set rule.
	dead := DeadForDeclared(rs, []spec.Kind{spec.KindLinkedList})
	if len(dead) != 1 || dead[0].Src != spec.KindSet {
		t.Fatalf("dead = %v, want just the Set rule", dead)
	}
}

func TestDeadForDeclaredAbstractDeclared(t *testing.T) {
	rs, err := Parse(`ArrayList : maxSize < 8 -> SingletonList
HashSet : maxSize < 8 -> ArraySet`)
	if err != nil {
		t.Fatal(err)
	}
	// An abstract List (inherited backing) keeps concrete list rules
	// live: any implementation may flow through the site.
	dead := DeadForDeclared(rs, []spec.Kind{spec.KindList})
	if len(dead) != 1 || dead[0].Src != spec.KindHashSet {
		t.Fatalf("dead = %v, want just the HashSet rule", dead)
	}
}

func TestDeadForDeclaredEmpty(t *testing.T) {
	rs, err := Parse(`Collection : maxSize < 4 -> ArrayList`)
	if err != nil {
		t.Fatal(err)
	}
	if dead := DeadForDeclared(rs, nil); len(dead) != 1 {
		t.Fatalf("no declared kinds: dead = %d rules, want all 1", len(dead))
	}
	if dead := DeadForDeclared(nil, []spec.Kind{spec.KindArrayList}); dead != nil {
		t.Fatalf("nil rule set: dead = %v, want nil", dead)
	}
	// KindCollection matches every collection kind both ways.
	if dead := DeadForDeclared(rs, []spec.Kind{spec.KindSingletonMap}); len(dead) != 0 {
		t.Fatalf("Collection rule reported dead against a map program: %v", dead)
	}
}
