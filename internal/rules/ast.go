package rules

import (
	"fmt"
	"strings"

	"chameleon/internal/spec"
)

// Expr is a numeric expression node.
type Expr interface {
	exprNode()
	// Pos reports the expression's source position.
	Pos() Pos
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	At    Pos
}

// OpCount references a per-instance average operation count: "#add",
// "#get(int)", "#allOps".
type OpCount struct {
	Name string
	At   Pos
}

// OpVar references a per-instance operation-count standard deviation:
// "@add".
type OpVar struct {
	Name string
	At   Pos
}

// MetricRef references a tracedata/heapdata metric by name (size, maxSize,
// initialCapacity, maxLive, ...).
type MetricRef struct {
	Name string
	At   Pos
}

// ParamRef references a named tuning parameter (the X, Y thresholds of the
// paper's rules), bound at evaluation time.
type ParamRef struct {
	Name string
	At   Pos
}

// StableRef is the explicit stability reference "stable(metric)": the
// standard deviation of a metric across the context's instances. The paper
// notes stability may be "specified explicitly in the rule" (§3.3.1);
// writing stable(m) anywhere in a rule's condition replaces the implicit
// stability gate for metric m with whatever the rule itself checks.
type StableRef struct {
	Name string
	At   Pos
}

// BinaryExpr is an arithmetic combination of two expressions.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/"
	L, R Expr
	At   Pos
}

func (*NumberLit) exprNode()  {}
func (*OpCount) exprNode()    {}
func (*OpVar) exprNode()      {}
func (*MetricRef) exprNode()  {}
func (*ParamRef) exprNode()   {}
func (*StableRef) exprNode()  {}
func (*BinaryExpr) exprNode() {}

// Pos implements Expr.
func (e *NumberLit) Pos() Pos { return e.At }

// Pos implements Expr.
func (e *OpCount) Pos() Pos { return e.At }

// Pos implements Expr.
func (e *OpVar) Pos() Pos { return e.At }

// Pos implements Expr.
func (e *MetricRef) Pos() Pos { return e.At }

// Pos implements Expr.
func (e *ParamRef) Pos() Pos { return e.At }

// Pos implements Expr.
func (e *StableRef) Pos() Pos { return e.At }

// Pos implements Expr.
func (e *BinaryExpr) Pos() Pos { return e.At }

// Cond is a boolean condition node.
type Cond interface {
	condNode()
	// Pos reports the condition's source position.
	Pos() Pos
}

// Comparison compares two expressions: ==, !=, <, <=, >, >=.
type Comparison struct {
	Op   string
	L, R Expr
	At   Pos
}

// AndCond is conjunction.
type AndCond struct {
	L, R Cond
	At   Pos
}

// OrCond is disjunction.
type OrCond struct {
	L, R Cond
	At   Pos
}

// NotCond is negation.
type NotCond struct {
	C  Cond
	At Pos
}

func (*Comparison) condNode() {}
func (*AndCond) condNode()    {}
func (*OrCond) condNode()     {}
func (*NotCond) condNode()    {}

// Pos implements Cond.
func (c *Comparison) Pos() Pos { return c.At }

// Pos implements Cond.
func (c *AndCond) Pos() Pos { return c.At }

// Pos implements Cond.
func (c *OrCond) Pos() Pos { return c.At }

// Pos implements Cond.
func (c *NotCond) Pos() Pos { return c.At }

// ActionKind distinguishes replacement actions from the advisory fixes of
// Table 2.
type ActionKind int

const (
	// ActReplace replaces the implementation with Action.Impl.
	ActReplace ActionKind = iota
	// ActSetCapacity keeps the implementation but tunes the initial
	// capacity ("incremental resizing -> set initial capacity").
	ActSetCapacity
	// ActAvoid advises removing the allocation entirely ("redundant
	// collection -> avoid allocation").
	ActAvoid
	// ActEliminateCopies advises eliminating temporary copies ("redundant
	// copying of collections -> eliminate temporaries").
	ActEliminateCopies
	// ActRemoveIterator advises removing iterators created over empty
	// collections ("redundant iterator -> remove").
	ActRemoveIterator
)

// String names the action kind in concrete syntax.
func (k ActionKind) String() string {
	switch k {
	case ActReplace:
		return "replace"
	case ActSetCapacity:
		return "setCapacity"
	case ActAvoid:
		return "avoid"
	case ActEliminateCopies:
		return "eliminateCopies"
	case ActRemoveIterator:
		return "removeIterator"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// CapSpec is an optional capacity argument: either a literal or the
// context's maxSize metric (Fig. 4: capacity := INT | maxSize).
type CapSpec struct {
	// Present reports whether a capacity was written.
	Present bool
	// FromMaxSize selects the context's average maximal size.
	FromMaxSize bool
	// Value is the literal capacity when FromMaxSize is false.
	Value int64
}

// Action is a rule's right-hand side.
type Action struct {
	Kind     ActionKind
	Impl     spec.Kind // for ActReplace
	Capacity CapSpec
	At       Pos
}

// Rule is one selection rule.
type Rule struct {
	// Src is the source-type pattern the context's declared kind must
	// match (an abstract ADT or a concrete kind).
	Src spec.Kind
	// Cond is the guard over the context's statistics.
	Cond Cond
	// Act is the suggested fix.
	Act Action
	// Message is the optional human-readable category/message string,
	// conventionally prefixed "Space:", "Time:" or "Space/Time:" as in
	// Table 2.
	Message string
	// At is the rule's source position.
	At Pos
}

// Category extracts the leading category of the message ("Space", "Time",
// "Space/Time"), or "" when absent.
func (r *Rule) Category() string {
	i := strings.IndexByte(r.Message, ':')
	if i < 0 {
		return ""
	}
	cat := strings.TrimSpace(r.Message[:i])
	switch cat {
	case "Space", "Time", "Space/Time":
		return cat
	}
	return ""
}

// RuleSet is an ordered list of rules; earlier rules take priority when
// several match the same context.
type RuleSet struct {
	Rules []*Rule
}
