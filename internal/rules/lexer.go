package rules

import (
	"strconv"
	"strings"
	"unicode"
)

// lexer tokenizes rule text. Comments run from "//" to end of line.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		var b strings.Builder
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			b.WriteByte(lx.advance())
		}
		return token{kind: tokIdent, text: b.String(), pos: pos}, nil
	case unicode.IsDigit(rune(c)):
		var b strings.Builder
		seenDot := false
		for lx.off < len(lx.src) {
			c := lx.peek()
			if c == '.' && !seenDot && lx.off+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.off+1])) {
				seenDot = true
				b.WriteByte(lx.advance())
				continue
			}
			if !unicode.IsDigit(rune(c)) {
				break
			}
			b.WriteByte(lx.advance())
		}
		return token{kind: tokNumber, text: b.String(), pos: pos}, nil
	case c == '"':
		start := lx.off
		lx.advance()
		for {
			if lx.off >= len(lx.src) {
				return token{}, errf(pos, "unterminated string literal")
			}
			c := lx.advance()
			if c == '"' {
				break
			}
			if c == '\\' {
				if lx.off >= len(lx.src) {
					return token{}, errf(pos, "unterminated string literal")
				}
				lx.advance()
			}
		}
		// Decode with the full Go escape set so every literal the printer's
		// strconv.Quote can emit (\xNN, \uNNNN, ...) parses back.
		text, err := strconv.Unquote(lx.src[start:lx.off])
		if err != nil {
			return token{}, errf(pos, "bad string literal: %v", err)
		}
		return token{kind: tokString, text: text, pos: pos}, nil
	}
	lx.advance()
	two := func(next byte, k2 tokenKind, k1 tokenKind) (token, error) {
		if lx.peek() == next {
			lx.advance()
			return token{kind: k2, pos: pos}, nil
		}
		if k1 == tokEOF {
			return token{}, errf(pos, "unexpected character %q", string(c))
		}
		return token{kind: k1, pos: pos}, nil
	}
	switch c {
	case '#':
		return token{kind: tokHash, pos: pos}, nil
	case '@':
		return token{kind: tokAt, pos: pos}, nil
	case ':':
		return token{kind: tokColon, pos: pos}, nil
	case '(':
		return token{kind: tokLParen, pos: pos}, nil
	case ')':
		return token{kind: tokRParen, pos: pos}, nil
	case ',':
		return token{kind: tokComma, pos: pos}, nil
	case '+':
		return token{kind: tokPlus, pos: pos}, nil
	case '-':
		return two('>', tokArrow, tokMinus)
	case '*':
		return token{kind: tokStar, pos: pos}, nil
	case '/':
		return token{kind: tokSlash, pos: pos}, nil
	case '&':
		return two('&', tokAndAnd, tokEOF)
	case '|':
		return two('|', tokOrOr, tokEOF)
	case '=':
		return two('=', tokEq, tokEOF)
	case '!':
		return two('=', tokNeq, tokNot)
	case '<':
		return two('=', tokLe, tokLt)
	case '>':
		return two('=', tokGe, tokGt)
	}
	return token{}, errf(pos, "unexpected character %q", string(c))
}

// lexAll tokenizes the whole input (for the parser's lookahead buffer).
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
