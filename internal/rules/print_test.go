package rules

import (
	"math/rand"
	"strings"
	"testing"

	"chameleon/internal/spec"
)

func TestPrintRuleConcrete(t *testing.T) {
	cases := []string{
		`ArrayList : #contains > X && maxSize > Y -> LinkedHashSet`,
		`LinkedList : #get(int) > X -> ArrayList`,
		`HashMap : maxSize < Z && maxSize > 0 -> ArrayMap(maxSize)`,
		`Collection : #allOps == 0 -> avoid "Space/Time: redundant collection - avoid allocation"`,
		`Collection : maxSize > initialCapacity -> setCapacity(maxSize)`,
		`Collection : emptyIterators > E -> removeIterator`,
		`ArrayList : #add > 1 -> ArrayList(64)`,
	}
	for _, src := range cases {
		r := mustParseRule(t, src)
		printed := PrintRule(r)
		r2, err := ParseRule(printed)
		if err != nil {
			t.Errorf("printed form does not re-parse: %q: %v", printed, err)
			continue
		}
		if PrintRule(r2) != printed {
			t.Errorf("print not idempotent:\n  1: %q\n  2: %q", printed, PrintRule(r2))
		}
	}
}

func TestPrintPreservesPrecedence(t *testing.T) {
	cases := []string{
		"LinkedList : (#addAt + #removeAt) * 2 < X -> ArrayList",
		"LinkedList : #addAt - (#removeAt - 1) < X -> ArrayList",
		"LinkedList : #addAt / (#removeAt / 2) < X -> ArrayList",
		"Collection : (#add > 1 || #remove > 1) && maxSize > 0 -> avoid",
		"Collection : !(#add > 1 && #remove > 1) -> avoid",
	}
	for _, src := range cases {
		r := mustParseRule(t, src)
		printed := PrintRule(r)
		r2, err := ParseRule(printed)
		if err != nil {
			t.Fatalf("%q -> %q does not re-parse: %v", src, printed, err)
		}
		if got := PrintRule(r2); got != printed {
			t.Errorf("round-trip changed structure:\n  src: %q\n  p1:  %q\n  p2:  %q", src, printed, got)
		}
	}
}

// randomRule builds a random AST directly, exercising shapes the hand
// cases miss.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return &NumberLit{Value: float64(rng.Intn(100))}
		case 1:
			ops := []string{"add", "get(int)", "get(Object)", "contains", "removeFirst", "copied", "allOps"}
			return &OpCount{Name: ops[rng.Intn(len(ops))]}
		case 2:
			ops := []string{"add", "remove", "put"}
			return &OpVar{Name: ops[rng.Intn(len(ops))]}
		case 3:
			if rng.Intn(3) == 0 {
				ms := []string{"size", "maxSize"}
				return &StableRef{Name: ms[rng.Intn(len(ms))]}
			}
			ms := []string{"size", "maxSize", "initialCapacity", "maxLive", "totUsed", "potential"}
			return &MetricRef{Name: ms[rng.Intn(len(ms))]}
		default:
			ps := []string{"X", "Y", "Z", "E", "W"}
			return &ParamRef{Name: ps[rng.Intn(len(ps))]}
		}
	}
	ops := []string{"+", "-", "*", "/"}
	return &BinaryExpr{
		Op: ops[rng.Intn(len(ops))],
		L:  randomExpr(rng, depth-1),
		R:  randomExpr(rng, depth-1),
	}
}

func randomCond(rng *rand.Rand, depth int) Cond {
	if depth <= 0 || rng.Intn(3) == 0 {
		ops := []string{"==", "!=", "<", "<=", ">", ">="}
		return &Comparison{
			Op: ops[rng.Intn(len(ops))],
			L:  randomExpr(rng, 2),
			R:  randomExpr(rng, 2),
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &AndCond{L: randomCond(rng, depth-1), R: randomCond(rng, depth-1)}
	case 1:
		return &OrCond{L: randomCond(rng, depth-1), R: randomCond(rng, depth-1)}
	default:
		return &NotCond{C: randomCond(rng, depth-1)}
	}
}

func randomRule(rng *rand.Rand) *Rule {
	srcs := []spec.Kind{
		spec.KindCollection, spec.KindList, spec.KindArrayList,
		spec.KindLinkedList, spec.KindHashMap, spec.KindHashSet,
	}
	r := &Rule{
		Src:  srcs[rng.Intn(len(srcs))],
		Cond: randomCond(rng, 3),
	}
	switch rng.Intn(5) {
	case 0:
		r.Act = Action{Kind: ActAvoid}
	case 1:
		r.Act = Action{Kind: ActEliminateCopies}
	case 2:
		r.Act = Action{Kind: ActSetCapacity, Capacity: CapSpec{Present: true, FromMaxSize: true}}
	case 3:
		r.Act = Action{Kind: ActReplace, Impl: spec.KindArrayMap,
			Capacity: CapSpec{Present: true, Value: int64(rng.Intn(100))}}
	default:
		impls := []spec.Kind{spec.KindArrayList, spec.KindLazyArrayList, spec.KindArraySet, spec.KindLinkedHashSet}
		r.Act = Action{Kind: ActReplace, Impl: impls[rng.Intn(len(impls))]}
	}
	if rng.Intn(2) == 0 {
		msgs := []string{"Space: m", "Time: m", "Space/Time: m", `with "quotes" and \ slashes`}
		r.Message = msgs[rng.Intn(len(msgs))]
	}
	return r
}

// Property: for randomly generated ASTs, print -> parse -> print is a
// fixed point (the printer emits valid, structure-preserving syntax).
func TestPrintParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		r := randomRule(rng)
		printed := PrintRule(r)
		r2, err := ParseRule(printed)
		if err != nil {
			t.Fatalf("iteration %d: printed rule does not parse:\n  %q\n  %v", i, printed, err)
		}
		printed2 := PrintRule(r2)
		if printed2 != printed {
			t.Fatalf("iteration %d: round trip not stable:\n  1: %q\n  2: %q", i, printed, printed2)
		}
	}
}

func TestPrintRuleSet(t *testing.T) {
	rs := Builtin()
	text := Print(rs)
	if strings.Count(text, "\n") != len(rs.Rules) {
		t.Fatalf("printed %d lines for %d rules", strings.Count(text, "\n"), len(rs.Rules))
	}
	rs2, err := Parse(text)
	if err != nil {
		t.Fatalf("printed builtin set does not re-parse: %v", err)
	}
	if len(rs2.Rules) != len(rs.Rules) {
		t.Fatalf("rule count changed: %d -> %d", len(rs.Rules), len(rs2.Rules))
	}
	if Print(rs2) != text {
		t.Fatal("builtin round trip not stable")
	}
}
