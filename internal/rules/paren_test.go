package rules

import (
	"strings"
	"testing"
	"time"
)

func TestDeepParensFast(t *testing.T) {
	src := "Collection : " + strings.Repeat("(", 40) + "#add > 1" + strings.Repeat(")", 40) + " -> avoid"
	start := time.Now()
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deep parens took %v (exponential backtracking?)", d)
	}
	bad := "Collection : " + strings.Repeat("(", 40)
	start = time.Now()
	Parse(bad)
	if d := time.Since(start); d > time.Second {
		t.Fatalf("unclosed deep parens took %v", d)
	}
}
