package rules

import "chameleon/internal/spec"

// DeadForDeclared reports the rules in rs that can never fire given the
// declared kinds allocated by a program: a rule is live when some
// declared kind can produce a collection matching its srcType, dead
// otherwise. An abstract declared kind (a NewListFrom site inherits its
// backing from its source at run time) keeps every rule of its family
// live, since any implementation of the family may flow through it.
//
// This is Vet's dual, computed against a program instead of the rule set
// alone: Vet proves a rule unsatisfiable from its guard, DeadForDeclared
// proves it unreachable from the program's allocation sites. The static
// analyzer (internal/analysis, S009) is the consumer.
func DeadForDeclared(rs *RuleSet, declared []spec.Kind) []*Rule {
	if rs == nil {
		return nil
	}
	var dead []*Rule
	for _, r := range rs.Rules {
		if !ruleLive(r.Src, declared) {
			dead = append(dead, r)
		}
	}
	return dead
}

// ruleLive reports whether any declared kind can match src. The check
// runs both directions of Matches: a concrete declared kind matches an
// abstract src the usual way, while an abstract declared kind (unknown
// concrete backing) is matched by any src within its family.
func ruleLive(src spec.Kind, declared []spec.Kind) bool {
	for _, k := range declared {
		if k == spec.KindNone {
			continue
		}
		if k.Matches(src) || src.Matches(k) {
			return true
		}
	}
	return false
}
