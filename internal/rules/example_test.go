package rules_test

import (
	"fmt"

	"chameleon/internal/rules"
)

// ExampleParse shows a rule in the Fig. 4 language being parsed and
// printed back.
func ExampleParse() {
	rs, err := rules.Parse(`
// the paper's §3.3.1 example rule
ArrayList : #contains > X && maxSize > Y -> LinkedHashSet
    "Time: inefficient use of an ArrayList"
`)
	if err != nil {
		panic(err)
	}
	fmt.Print(rules.Print(rs))
	// Output:
	// ArrayList : #contains > X && maxSize > Y -> LinkedHashSet "Time: inefficient use of an ArrayList"
}

// ExampleParamsOf reports which tuning parameters a rule set needs bound.
func ExampleParamsOf() {
	rs, _ := rules.Parse(`HashMap : maxSize < Z && #get(Object) > X -> ArrayMap(maxSize)`)
	fmt.Println(rules.ParamsOf(rs))
	// Output:
	// [X Z]
}

// ExampleCheck demonstrates static checking of a rule set.
func ExampleCheck() {
	rs, _ := rules.Parse(`HashMap : #frobnicate > 1 -> ArrayMap`)
	for _, err := range rules.Check(rs, rules.DefaultParams) {
		fmt.Println(err)
	}
	// Output:
	// rules: 1:11: unknown operation "frobnicate"
}
