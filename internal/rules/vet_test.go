package rules

import (
	"encoding/json"
	"strings"
	"testing"
)

// vetOne parses src and vets it under the default parameters.
func vetOne(t *testing.T, src string) []Diagnostic {
	t.Helper()
	rs, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Vet(rs, DefaultParams)
}

// codesOf projects diagnostics to their codes, in order.
func codesOf(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Code
	}
	return out
}

func TestVetDiagnosticKinds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // expected codes, in position order
		sev  Severity // severity of the first expected diagnostic
	}{
		{
			name: "unsatisfiable conjunction over a parameter",
			src:  "ArrayList : maxSize < 2 && maxSize > Y -> LinkedHashSet",
			want: []string{CodeUnsatisfiable},
			sev:  SevError,
		},
		{
			name: "unsatisfiable against a metric's base domain",
			src:  "ArrayList : emptyFraction > 2 -> LazyArrayList",
			want: []string{CodeUnsatisfiable},
			sev:  SevError,
		},
		{
			name: "unsatisfiable negative count",
			src:  "ArrayList : #add < 0 -> LazyArrayList",
			want: []string{CodeUnsatisfiable},
			sev:  SevError,
		},
		{
			name: "always-true single comparison",
			src:  "ArrayList : #add >= 0 -> LazyArrayList",
			want: []string{CodeAlwaysTrue},
			sev:  SevWarning,
		},
		{
			name: "always-true fraction bound inside a conjunction",
			src:  "ArrayList : emptyFraction <= 1 && #add > X -> LazyArrayList",
			want: []string{CodeAlwaysTrue},
			sev:  SevWarning,
		},
		{
			name: "never-true disjunct leaves the condition satisfiable",
			src:  "ArrayList : maxSize < 0 || #add > X -> LazyArrayList",
			want: []string{CodeNeverTrue},
			sev:  SevWarning,
		},
		{
			name: "shadowed by an identical earlier rule",
			src: "ArrayList : #contains > X -> LinkedHashSet\n" +
				"ArrayList : #contains > X -> LinkedHashSet\n",
			want: []string{CodeShadowed},
			sev:  SevWarning,
		},
		{
			name: "shadowed by a strictly weaker earlier bound",
			src: "List : maxSize > Z -> ArrayList\n" +
				"ArrayList : maxSize > Y && #add > X -> LinkedList\n",
			// Z=16 < Y=32: maxSize > 32 implies maxSize > 16, List
			// subsumes ArrayList, so the second rule is never primary.
			want: []string{CodeShadowed},
			sev:  SevWarning,
		},
		{
			name: "shadowed by an always-true earlier condition",
			src: "LinkedList : #get(int) >= 0 -> ArrayList\n" +
				"LinkedList : #get(int) > X -> ArrayList\n",
			want: []string{CodeAlwaysTrue, CodeShadowed},
			sev:  SevWarning,
		},
		{
			name: "map operation on a list srcType",
			src:  "List : #put > X -> ArrayList",
			want: []string{CodeVacuousOp},
			sev:  SevWarning,
		},
		{
			name: "containsKey variance on a concrete list srcType",
			src:  "ArrayList : @containsKey > X -> LinkedList",
			want: []string{CodeVacuousOp},
			sev:  SevWarning,
		},
		{
			name: "self-replacement without a capacity change",
			src:  "ArrayList : maxSize > Y -> ArrayList",
			want: []string{CodeSelfReplace},
			sev:  SevWarning,
		},
		{
			name: "zero divisor",
			src:  "HashMap : #get(Object) + #put / 0 > X -> ArrayMap",
			want: []string{CodeZeroDivisor},
			sev:  SevWarning,
		},
		{
			name: "stable() on a metric the rule never reads",
			src:  "HashSet : stable(maxSize) < S && #add > X -> OpenHashSet",
			want: []string{CodeStableUnread},
			sev:  SevWarning,
		},
		{
			name: "explicit instability bound contradicts the implicit gate",
			src:  "HashMap : size > 0 && maxSize > Z && stable(maxSize) > S -> OpenHashMap",
			want: []string{CodeStableConflict},
			sev:  SevError,
		},
		{
			name: "clean rule",
			src:  "ArrayList : #contains > X && maxSize > Y -> LinkedHashSet",
			want: nil,
		},
		{
			name: "clean guarded ratio",
			src:  "Collection : #allOps > 0 && #copied / #allOps >= F -> eliminateCopies",
			want: nil,
		},
		{
			name: "explicit stable() read with the metric is clean",
			src:  "HashMap : maxSize >= Z && stable(maxSize) < S -> OpenHashMap(maxSize)",
			want: nil,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := vetOne(t, c.src)
			if gc := codesOf(got); !equalStrings(gc, c.want) {
				t.Fatalf("codes = %v, want %v\ndiags: %v", gc, c.want, got)
			}
			if len(c.want) > 0 && got[0].Severity != c.sev {
				t.Errorf("severity = %v, want %v", got[0].Severity, c.sev)
			}
		})
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The shipped rule sets must stay semantically clean.
func TestVetShippedRuleSetsClean(t *testing.T) {
	for _, c := range []struct {
		name string
		rs   *RuleSet
	}{
		{"builtin", Builtin()},
		{"extended", Extended()},
	} {
		if diags := Vet(c.rs, DefaultParams); len(diags) != 0 {
			for _, d := range diags {
				t.Errorf("%s: %s", c.name, d)
			}
		}
	}
}

func TestVetShadowedCarriesRelatedPosition(t *testing.T) {
	diags := vetOne(t,
		"Collection : #allOps == 0 -> avoid\n"+
			"HashMap : #allOps == 0 -> avoid\n")
	if len(diags) != 1 || diags[0].Code != CodeShadowed {
		t.Fatalf("diags = %v, want one shadowed", diags)
	}
	d := diags[0]
	if d.Rule != 2 || d.Pos.Line != 2 {
		t.Errorf("shadowed rule at rule=%d line=%d, want rule 2 line 2", d.Rule, d.Pos.Line)
	}
	if d.Related == nil || d.Related.Line != 1 {
		t.Errorf("related = %v, want line 1", d.Related)
	}
}

// A narrower earlier rule must NOT shadow a broader later one, and an
// earlier rule with a stricter stability gate must not count as covering
// a later rule that reads no size metrics.
func TestVetNoFalseShadowing(t *testing.T) {
	for _, src := range []string{
		// Earlier is narrower (ArrayList) than later (List): no subsumption.
		"ArrayList : maxSize > Y -> LinkedHashSet\nList : maxSize > Y -> ArrayList\n",
		// Later condition does not imply the earlier one.
		"ArrayList : maxSize > Y -> LinkedHashSet\nArrayList : maxSize > Z -> LazyArrayList\n",
		// Earlier reads maxSize (implicit gate); later reads none, so the
		// earlier gate can block contexts where the later still fires.
		"Collection : maxSize > 0 && #allOps > 0 -> setCapacity(maxSize)\nCollection : #allOps > 0 -> avoid\n",
	} {
		rs, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		for _, d := range Vet(rs, DefaultParams) {
			if d.Code == CodeShadowed {
				t.Errorf("false shadowing on:\n%s  diag: %s", src, d)
			}
		}
	}
}

// An unbound parameter must widen the analysis, not produce verdicts.
func TestVetUnboundParameterWidens(t *testing.T) {
	rs, err := Parse("ArrayList : maxSize < 2 && maxSize > UNBOUND -> LinkedHashSet")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Vet(rs, Params{}); len(diags) != 0 {
		t.Errorf("diags = %v, want none (UNBOUND is unconstrained)", diags)
	}
}

func TestVetNilRuleSet(t *testing.T) {
	if diags := Vet(nil, nil); diags != nil {
		t.Errorf("Vet(nil) = %v, want nil", diags)
	}
}

func TestDiagnosticRendering(t *testing.T) {
	diags := vetOne(t, "ArrayList : #add < 0 -> LazyArrayList")
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want 1", diags)
	}
	s := diags[0].String()
	for _, want := range []string{"error", "[unsat]", "rule 1", "1:18"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	b, err := json.Marshal(diags[0])
	if err != nil {
		t.Fatal(err)
	}
	var back Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Code != CodeUnsatisfiable || back.Severity != SevError || back.Pos != diags[0].Pos {
		t.Errorf("JSON round trip lost fields: %+v", back)
	}
	if !strings.Contains(string(b), `"severity":"error"`) {
		t.Errorf("severity not marshaled as a name: %s", b)
	}
}
