package rules

import (
	"strconv"

	"chameleon/internal/spec"
)

// parser is a recursive-descent parser for the rule language.
type parser struct {
	toks []token
	i    int
}

// Parse parses a whole rule set.
func Parse(src string) (*RuleSet, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	rs := &RuleSet{}
	for p.cur().kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rs.Rules = append(rs.Rules, r)
	}
	return rs, nil
}

// ParseRule parses exactly one rule.
func ParseRule(src string) (*Rule, error) {
	rs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(rs.Rules) != 1 {
		return nil, errf(Pos{1, 1}, "expected exactly one rule, got %d", len(rs.Rules))
	}
	return rs.Rules[0], nil
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, errf(p.cur().pos, "expected %v, found %v", k, p.describe(p.cur()))
	}
	return p.advance(), nil
}

func (p *parser) describe(t token) string {
	if t.kind == tokIdent || t.kind == tokNumber {
		return "'" + t.text + "'"
	}
	return t.kind.String()
}

// parseRule := srcType ':' cond '->' action [STRING]
func (p *parser) parseRule() (*Rule, error) {
	start := p.cur().pos
	tyTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	src, ok := spec.KindByName(tyTok.text)
	if !ok {
		return nil, errf(tyTok.pos, "unknown source type %q", tyTok.text)
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return nil, err
	}
	act, err := p.parseAction()
	if err != nil {
		return nil, err
	}
	r := &Rule{Src: src, Cond: cond, Act: act, At: start}
	if p.cur().kind == tokString {
		r.Message = p.advance().text
	}
	return r, nil
}

// parseAction := implType ['(' capacity ')']
//
//	| 'setCapacity' '(' capacity ')'
//	| 'avoid' | 'eliminateCopies' | 'removeIterator'
func (p *parser) parseAction() (Action, error) {
	tok, err := p.expect(tokIdent)
	if err != nil {
		return Action{}, err
	}
	act := Action{At: tok.pos}
	switch tok.text {
	case "avoid":
		act.Kind = ActAvoid
		return act, nil
	case "eliminateCopies":
		act.Kind = ActEliminateCopies
		return act, nil
	case "removeIterator":
		act.Kind = ActRemoveIterator
		return act, nil
	case "setCapacity":
		act.Kind = ActSetCapacity
		capSpec, err := p.parseCapArg()
		if err != nil {
			return Action{}, err
		}
		if !capSpec.Present {
			return Action{}, errf(tok.pos, "setCapacity requires a capacity argument")
		}
		act.Capacity = capSpec
		return act, nil
	}
	impl, ok := spec.KindByName(tok.text)
	if !ok {
		return Action{}, errf(tok.pos, "unknown implementation type %q", tok.text)
	}
	if impl.IsAbstract() {
		return Action{}, errf(tok.pos, "%q is abstract and cannot be an implementation type", tok.text)
	}
	act.Kind = ActReplace
	act.Impl = impl
	if p.cur().kind == tokLParen {
		capSpec, err := p.parseCapArg()
		if err != nil {
			return Action{}, err
		}
		act.Capacity = capSpec
	}
	return act, nil
}

// parseCapArg := '(' (INT | 'maxSize') ')'
func (p *parser) parseCapArg() (CapSpec, error) {
	if p.cur().kind != tokLParen {
		return CapSpec{}, nil
	}
	p.advance()
	var cs CapSpec
	cs.Present = true
	switch t := p.cur(); t.kind {
	case tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return CapSpec{}, errf(t.pos, "capacity must be an integer, got %q", t.text)
		}
		cs.Value = v
		p.advance()
	case tokIdent:
		if t.text != "maxSize" {
			return CapSpec{}, errf(t.pos, "capacity must be an integer or maxSize, got %q", t.text)
		}
		cs.FromMaxSize = true
		p.advance()
	default:
		return CapSpec{}, errf(t.pos, "capacity must be an integer or maxSize")
	}
	if _, err := p.expect(tokRParen); err != nil {
		return CapSpec{}, err
	}
	return cs, nil
}

// parseOr := parseAnd { '||' parseAnd }
func (p *parser) parseOr() (Cond, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOrOr {
		at := p.advance().pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &OrCond{L: l, R: r, At: at}
	}
	return l, nil
}

// parseAnd := parseUnary { '&&' parseUnary }
func (p *parser) parseAnd() (Cond, error) {
	l, err := p.parseUnaryCond()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		at := p.advance().pos
		r, err := p.parseUnaryCond()
		if err != nil {
			return nil, err
		}
		l = &AndCond{L: l, R: r, At: at}
	}
	return l, nil
}

// parseUnaryCond := '!' parseUnaryCond | comparison
// A leading '(' is ambiguous between a parenthesized condition and a
// parenthesized arithmetic expression (both occur in Table 2); the parser
// resolves it by trying a condition first and falling back to a
// comparison whose left side starts with a parenthesized expression.
func (p *parser) parseUnaryCond() (Cond, error) {
	if p.cur().kind == tokNot {
		at := p.advance().pos
		c, err := p.parseUnaryCond()
		if err != nil {
			return nil, err
		}
		return &NotCond{C: c, At: at}, nil
	}
	if p.cur().kind == tokLParen {
		save := p.i
		p.advance()
		c, err := p.parseOr()
		if err == nil {
			if _, err2 := p.expect(tokRParen); err2 == nil {
				// Only a genuine condition group: a comparison must follow
				// inside, which parseOr guarantees (comparisons are the
				// only leaves). But "(a+b) > c" would have failed above.
				return c, nil
			}
		}
		p.i = save // fall back: parenthesized arithmetic expression
	}
	return p.parseComparison()
}

// parseComparison := expr relop expr
func (p *parser) parseComparison() (Cond, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	var op string
	t := p.cur()
	switch t.kind {
	case tokEq:
		op = "=="
	case tokNeq:
		op = "!="
	case tokLt:
		op = "<"
	case tokLe:
		op = "<="
	case tokGt:
		op = ">"
	case tokGe:
		op = ">="
	default:
		return nil, errf(t.pos, "expected comparison operator, found %v", p.describe(t))
	}
	p.advance()
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Comparison{Op: op, L: l, R: r, At: t.pos}, nil
}

// parseExpr := term { ('+'|'-') term }
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPlus && t.kind != tokMinus {
			return l, nil
		}
		p.advance()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := "+"
		if t.kind == tokMinus {
			op = "-"
		}
		l = &BinaryExpr{Op: op, L: l, R: r, At: t.pos}
	}
}

// parseTerm := factor { ('*'|'/') factor }
func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokStar && t.kind != tokSlash {
			return l, nil
		}
		p.advance()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		op := "*"
		if t.kind == tokSlash {
			op = "/"
		}
		l = &BinaryExpr{Op: op, L: l, R: r, At: t.pos}
	}
}

// parseFactor := NUMBER | '#' opName | '@' opName | IDENT | '(' expr ')'
func (p *parser) parseFactor() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errf(t.pos, "bad number %q", t.text)
		}
		return &NumberLit{Value: v, At: t.pos}, nil
	case tokHash:
		p.advance()
		name, err := p.parseOpName()
		if err != nil {
			return nil, err
		}
		return &OpCount{Name: name, At: t.pos}, nil
	case tokAt:
		p.advance()
		name, err := p.parseOpName()
		if err != nil {
			return nil, err
		}
		return &OpVar{Name: name, At: t.pos}, nil
	case tokIdent:
		p.advance()
		if t.text == "stable" && p.cur().kind == tokLParen {
			p.advance()
			arg, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &StableRef{Name: arg.text, At: t.pos}, nil
		}
		// Name resolution between metric and parameter happens in the
		// checker; the parser emits MetricRef for names in the metric
		// vocabulary and ParamRef otherwise.
		if isMetricName(t.text) {
			return &MetricRef{Name: t.text, At: t.pos}, nil
		}
		return &ParamRef{Name: t.text, At: t.pos}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.pos, "expected expression, found %v", p.describe(t))
}

// parseOpName := IDENT ['(' IDENT ')']   (e.g. add, get(int), get(Object))
func (p *parser) parseOpName() (string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	name := t.text
	if p.cur().kind == tokLParen && p.peek().kind == tokIdent {
		// Only consume the parenthesized suffix if it completes a known
		// overloaded operation name like get(int) / get(Object).
		if arg := p.peek().text; spec.IsOverloadedOp(name, arg) {
			p.advance() // (
			p.advance() // arg
			if _, err := p.expect(tokRParen); err != nil {
				return "", err
			}
			name = name + "(" + arg + ")"
		}
	}
	return name, nil
}

// metricNames is the tracedata/heapdata vocabulary of Fig. 4 plus the
// derived metrics the profiler exposes.
var metricNames = map[string]bool{
	"size": true, "maxSize": true, "initialCapacity": true,
	"maxLive": true, "totLive": true, "maxUsed": true, "totUsed": true,
	"maxCore": true, "totCore": true,
	"allocs": true, "liveObjects": true, "maxObjects": true, "totObjects": true,
	"potential": true, "emptyIterators": true, "gcCycles": true,
	"emptyFraction": true, "sizeMode": true,
	"crossGoroutineFraction": true, "ownerStability": true,
}

func isMetricName(s string) bool { return metricNames[s] }

// MetricNames reports the metric vocabulary (for documentation and tests).
func MetricNames() []string {
	out := make([]string, 0, len(metricNames))
	for n := range metricNames {
		out = append(out, n)
	}
	return out
}
