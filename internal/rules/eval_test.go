package rules

import (
	"testing"

	"chameleon/internal/spec"
)

// fakeProfile is a hand-built Profile for evaluator tests.
type fakeProfile struct {
	kind      spec.Kind
	opMeans   map[string]float64
	opStds    map[string]float64
	metrics   map[string]float64
	stability map[string]float64
}

func (f *fakeProfile) OpMeanByName(name string) (float64, bool) {
	if name == "allOps" {
		var sum float64
		for _, v := range f.opMeans {
			sum += v
		}
		return sum, true
	}
	if _, ok := spec.OpByName(name); !ok {
		return 0, false
	}
	return f.opMeans[name], true
}

func (f *fakeProfile) OpStdDevByName(name string) (float64, bool) {
	if _, ok := spec.OpByName(name); !ok {
		return 0, false
	}
	return f.opStds[name], true
}

func (f *fakeProfile) Metric(name string) (float64, bool) {
	v, ok := f.metrics[name]
	if !ok {
		if !isMetricName(name) {
			return 0, false
		}
		return 0, true
	}
	return v, true
}

func (f *fakeProfile) Stability(name string) float64 { return f.stability[name] }
func (f *fakeProfile) SrcKind() spec.Kind            { return f.kind }

func smallHashMapProfile() *fakeProfile {
	return &fakeProfile{
		kind:    spec.KindHashMap,
		opMeans: map[string]float64{"put": 7, "get(Object)": 120},
		metrics: map[string]float64{"maxSize": 7, "initialCapacity": 16, "maxLive": 10000, "maxUsed": 4000},
	}
}

func TestEvalRuleFires(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize < Z && maxSize > 0 -> ArrayMap(maxSize)")
	m, ok, err := EvalRule(r, smallHashMapProfile(), EvalOptions{Params: Params{"Z": 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("rule should fire")
	}
	if m.Capacity != 7 {
		t.Fatalf("capacity = %d, want maxSize=7", m.Capacity)
	}
}

func TestEvalRuleSrcTypeMismatch(t *testing.T) {
	r := mustParseRule(t, "HashSet : maxSize < 16 -> ArraySet")
	_, ok, err := EvalRule(r, smallHashMapProfile(), EvalOptions{})
	if err != nil || ok {
		t.Fatalf("HashSet rule must not fire on a HashMap context (ok=%v err=%v)", ok, err)
	}
}

func TestEvalRuleAbstractSrcMatches(t *testing.T) {
	r := mustParseRule(t, "Map : maxSize < 16 -> ArrayMap")
	_, ok, err := EvalRule(r, smallHashMapProfile(), EvalOptions{})
	if err != nil || !ok {
		t.Fatalf("Map rule should fire on HashMap context (ok=%v err=%v)", ok, err)
	}
	r2 := mustParseRule(t, "Collection : maxSize < 16 -> ArrayMap")
	if _, ok, _ := EvalRule(r2, smallHashMapProfile(), EvalOptions{}); !ok {
		t.Fatal("Collection rule should fire on any collection context")
	}
}

func TestEvalStabilityGating(t *testing.T) {
	p := smallHashMapProfile()
	p.stability = map[string]float64{"maxSize": 50} // wildly varying sizes
	r := mustParseRule(t, "HashMap : maxSize < 16 -> ArrayMap")
	if _, ok, _ := EvalRule(r, p, EvalOptions{}); ok {
		t.Fatal("unstable maxSize must block a size-conditioned rule (Definition 3.1)")
	}
	// Disabling the gate lets it fire.
	if _, ok, _ := EvalRule(r, p, EvalOptions{MaxSizeStdDev: -1}); !ok {
		t.Fatal("disabled gating should allow the rule")
	}
	// A rule that does not read size metrics is unaffected.
	r2 := mustParseRule(t, "HashMap : #get(Object) > 10 -> ArrayMap")
	if _, ok, _ := EvalRule(r2, p, EvalOptions{}); !ok {
		t.Fatal("op-count rules are not stability-restricted (§3.3.1)")
	}
}

func TestEvalOperatorsAndArithmetic(t *testing.T) {
	p := &fakeProfile{
		kind:    spec.KindLinkedList,
		opMeans: map[string]float64{"addAt": 2, "removeAt": 3, "get(int)": 50},
		metrics: map[string]float64{"maxSize": 10},
	}
	cases := map[string]bool{
		"LinkedList : #addAt + #removeAt < 6 -> ArrayList":        true,
		"LinkedList : #addAt + #removeAt < 5 -> ArrayList":        false,
		"LinkedList : #addAt * #removeAt == 6 -> ArrayList":       true,
		"LinkedList : #removeAt - #addAt == 1 -> ArrayList":       true,
		"LinkedList : #removeAt / #addAt >= 1.5 -> ArrayList":     true,
		"LinkedList : #addAt != 2 -> ArrayList":                   false,
		"LinkedList : #addAt <= 2 && #removeAt >= 3 -> ArrayList": true,
		"LinkedList : #addAt > 5 || #removeAt > 2 -> ArrayList":   true,
		"LinkedList : !(#addAt > 5) -> ArrayList":                 true,
		"LinkedList : #get(int) / maxSize == 5 -> ArrayList":      true,
		"LinkedList : #add / #put > 0 -> ArrayList":               false, // guarded /0
	}
	for src, want := range cases {
		r := mustParseRule(t, src)
		_, got, err := EvalRule(r, p, EvalOptions{})
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalUnboundParameterError(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize < Q -> ArrayMap")
	_, _, err := EvalRule(r, smallHashMapProfile(), EvalOptions{})
	if err == nil {
		t.Fatal("unbound parameter must error")
	}
}

func TestEvalRuleSetOrdering(t *testing.T) {
	rs, err := Parse(`
HashMap : maxSize < 16 -> ArrayMap "first"
HashMap : maxSize < 100 -> LazyMap "second"
`)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Eval(rs, smallHashMapProfile(), EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	if ms[0].Rule.Message != "first" {
		t.Fatalf("priority order lost: %q first", ms[0].Rule.Message)
	}
}

func TestEvalLiteralCapacity(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize < 16 -> ArrayMap(8)")
	m, ok, err := EvalRule(r, smallHashMapProfile(), EvalOptions{})
	if err != nil || !ok {
		t.Fatalf("should fire: %v", err)
	}
	if m.Capacity != 8 {
		t.Fatalf("capacity = %d", m.Capacity)
	}
}

func TestCheckCatchesBadNames(t *testing.T) {
	rs, err := Parse("HashMap : #frobnicate > 1 -> ArrayMap")
	if err != nil {
		t.Fatal(err)
	}
	errs := Check(rs, DefaultParams)
	if len(errs) == 0 {
		t.Fatal("unknown op not caught")
	}

	rs2, _ := Parse("HashMap : maxSize < Q -> ArrayMap")
	if errs := Check(rs2, DefaultParams); len(errs) == 0 {
		t.Fatal("unbound parameter not caught")
	}
	if errs := Check(rs2, Params{"Q": 1}); len(errs) != 0 {
		t.Fatalf("bound parameter rejected: %v", errs)
	}

	rs3, _ := Parse("HashMap : @frobnicate > 1 -> ArrayMap")
	if errs := Check(rs3, DefaultParams); len(errs) == 0 {
		t.Fatal("unknown @op not caught")
	}

	// Cross-ADT replacement from an abstract source is rejected.
	rs4, _ := Parse("Set : maxSize < 4 -> ArrayMap")
	if errs := Check(rs4, DefaultParams); len(errs) == 0 {
		t.Fatal("Set -> ArrayMap not caught")
	}
	// ... but allowed from a concrete source (ArrayList -> LinkedHashSet
	// is a paper rule) and from Collection.
	rs5, _ := Parse("ArrayList : #contains > X && maxSize > Y -> LinkedHashSet")
	if errs := Check(rs5, DefaultParams); len(errs) != 0 {
		t.Fatalf("paper rule rejected: %v", errs)
	}
}

func TestParamsOfAndMetricsOf(t *testing.T) {
	rs, err := Parse(`
ArrayList : #contains > X && maxSize > Y -> LinkedHashSet
HashMap : maxSize < Z && initialCapacity > 0 -> ArrayMap
`)
	if err != nil {
		t.Fatal(err)
	}
	params := ParamsOf(rs)
	if len(params) != 3 || params[0] != "X" || params[1] != "Y" || params[2] != "Z" {
		t.Fatalf("params = %v", params)
	}
	ms := MetricsOf(rs.Rules[1])
	if len(ms) != 2 || ms[0] != "initialCapacity" || ms[1] != "maxSize" {
		t.Fatalf("metrics = %v", ms)
	}
}

func TestBuiltinRulesParseCheckAndFire(t *testing.T) {
	rs := Builtin()
	if len(rs.Rules) < 10 {
		t.Fatalf("builtin rules = %d, want the Table 2 set", len(rs.Rules))
	}
	// The TVLA scenario: small get-dominated HashMaps -> ArrayMap.
	ms, err := Eval(rs, smallHashMapProfile(), EvalOptions{Params: DefaultParams})
	if err != nil {
		t.Fatal(err)
	}
	var sawArrayMap bool
	for _, m := range ms {
		if m.Rule.Act.Kind == ActReplace && m.Rule.Act.Impl == spec.KindArrayMap {
			sawArrayMap = true
		}
	}
	if !sawArrayMap {
		t.Fatal("builtin rules did not suggest ArrayMap for a small HashMap context")
	}

	// Empty LinkedLists (the bloat scenario) -> LazyArrayList.
	bloat := &fakeProfile{
		kind:    spec.KindLinkedList,
		opMeans: map[string]float64{"iterator": 1},
		metrics: map[string]float64{"maxSize": 0},
	}
	ms2, err := Eval(rs, bloat, EvalOptions{Params: DefaultParams})
	if err != nil {
		t.Fatal(err)
	}
	var sawLazy bool
	for _, m := range ms2 {
		if m.Rule.Act.Kind == ActReplace && m.Rule.Act.Impl == spec.KindLazyArrayList {
			sawLazy = true
		}
		if m.Rule.Act.Kind == ActReplace && m.Rule.Act.Impl == spec.KindArrayList {
			t.Fatal("empty LinkedList must not be suggested a plain ArrayList")
		}
	}
	if !sawLazy {
		t.Fatal("builtin rules did not suggest LazyArrayList for empty LinkedLists")
	}

	// A never-used collection -> avoid.
	unused := &fakeProfile{kind: spec.KindArrayList, metrics: map[string]float64{}}
	ms3, _ := Eval(rs, unused, EvalOptions{Params: DefaultParams})
	var sawAvoid bool
	for _, m := range ms3 {
		if m.Rule.Act.Kind == ActAvoid {
			sawAvoid = true
		}
	}
	if !sawAvoid {
		t.Fatal("builtin rules did not flag an unused collection")
	}

	// A copy-only temporary -> eliminateCopies.
	temp := &fakeProfile{
		kind:    spec.KindArrayList,
		opMeans: map[string]float64{"copied": 3},
		metrics: map[string]float64{"maxSize": 0},
	}
	ms4, _ := Eval(rs, temp, EvalOptions{Params: DefaultParams})
	var sawElim bool
	for _, m := range ms4 {
		if m.Rule.Act.Kind == ActEliminateCopies {
			sawElim = true
		}
	}
	if !sawElim {
		t.Fatal("builtin rules did not flag a copy-only temporary")
	}

	// Growth past initial capacity -> setCapacity(maxSize).
	growing := &fakeProfile{
		kind:    spec.KindArrayList,
		opMeans: map[string]float64{"add": 50},
		metrics: map[string]float64{"maxSize": 50, "initialCapacity": 10},
	}
	ms5, _ := Eval(rs, growing, EvalOptions{Params: DefaultParams})
	var sawCap int64
	for _, m := range ms5 {
		if m.Rule.Act.Kind == ActSetCapacity {
			sawCap = m.Capacity
		}
	}
	if sawCap != 50 {
		t.Fatalf("setCapacity suggestion = %d, want 50", sawCap)
	}

	// Heavy contains on a large list -> LinkedHashSet (paper's first rule).
	containsHeavy := &fakeProfile{
		kind:    spec.KindArrayList,
		opMeans: map[string]float64{"contains": 500, "add": 100},
		metrics: map[string]float64{"maxSize": 100, "initialCapacity": 100},
	}
	ms6, _ := Eval(rs, containsHeavy, EvalOptions{Params: DefaultParams})
	if len(ms6) == 0 || ms6[0].Rule.Act.Impl != spec.KindLinkedHashSet {
		t.Fatalf("contains-heavy list: first match should be LinkedHashSet, got %v", ms6)
	}

	// LinkedList used for random access -> ArrayList.
	randomAccess := &fakeProfile{
		kind:    spec.KindLinkedList,
		opMeans: map[string]float64{"get(int)": 1000, "add": 50},
		metrics: map[string]float64{"maxSize": 50},
	}
	ms7, _ := Eval(rs, randomAccess, EvalOptions{Params: DefaultParams})
	if len(ms7) == 0 || ms7[0].Rule.Act.Impl != spec.KindArrayList {
		t.Fatalf("random-access LinkedList should suggest ArrayList first")
	}
}
