package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a rule set in concrete syntax, one rule per line. The
// output re-parses to an equal AST (tested by the round-trip property
// tests).
func Print(rs *RuleSet) string {
	var b strings.Builder
	for _, r := range rs.Rules {
		b.WriteString(PrintRule(r))
		b.WriteByte('\n')
	}
	return b.String()
}

// PrintRule renders one rule.
func PrintRule(r *Rule) string {
	var b strings.Builder
	b.WriteString(r.Src.String())
	b.WriteString(" : ")
	b.WriteString(printCond(r.Cond, false))
	b.WriteString(" -> ")
	b.WriteString(printAction(r.Act))
	if r.Message != "" {
		b.WriteString(" ")
		b.WriteString(strconv.Quote(r.Message))
	}
	return b.String()
}

func printAction(a Action) string {
	switch a.Kind {
	case ActReplace:
		if a.Capacity.Present {
			return a.Impl.String() + "(" + printCap(a.Capacity) + ")"
		}
		return a.Impl.String()
	case ActSetCapacity:
		return "setCapacity(" + printCap(a.Capacity) + ")"
	case ActAvoid:
		return "avoid"
	case ActEliminateCopies:
		return "eliminateCopies"
	case ActRemoveIterator:
		return "removeIterator"
	}
	return fmt.Sprintf("<%v>", a.Kind)
}

func printCap(c CapSpec) string {
	if c.FromMaxSize {
		return "maxSize"
	}
	return strconv.FormatInt(c.Value, 10)
}

// printCond renders a condition; inner controls parenthesization of
// disjunctions nested under conjunctions.
func printCond(c Cond, inner bool) string {
	switch c := c.(type) {
	case *Comparison:
		return printExpr(c.L, false) + " " + c.Op + " " + printExpr(c.R, false)
	case *AndCond:
		s := printCondIn(c.L, true) + " && " + printCondIn(c.R, true)
		return s
	case *OrCond:
		s := printCondIn(c.L, false) + " || " + printCondIn(c.R, false)
		if inner {
			return "(" + s + ")"
		}
		return s
	case *NotCond:
		return "!(" + printCond(c.C, false) + ")"
	}
	return "<cond>"
}

// printCondIn renders a child of a boolean operator, parenthesizing an Or
// under an And to preserve precedence.
func printCondIn(c Cond, underAnd bool) string {
	if _, isOr := c.(*OrCond); isOr && underAnd {
		return "(" + printCond(c, false) + ")"
	}
	return printCond(c, underAnd)
}

func precedence(op string) int {
	switch op {
	case "*", "/":
		return 2
	default:
		return 1
	}
}

func printExpr(e Expr, parenthesize bool) string {
	var s string
	switch e := e.(type) {
	case *NumberLit:
		s = strconv.FormatFloat(e.Value, 'g', -1, 64)
	case *OpCount:
		s = "#" + e.Name
	case *OpVar:
		s = "@" + e.Name
	case *MetricRef:
		s = e.Name
	case *ParamRef:
		s = e.Name
	case *StableRef:
		s = "stable(" + e.Name + ")"
	case *BinaryExpr:
		l := printExpr(e.L, childNeedsParens(e.L, e.Op, false))
		r := printExpr(e.R, childNeedsParens(e.R, e.Op, true))
		s = l + " " + e.Op + " " + r
		if parenthesize {
			s = "(" + s + ")"
		}
		return s
	default:
		s = "<expr>"
	}
	if parenthesize {
		return "(" + s + ")"
	}
	return s
}

// childNeedsParens reports whether a child expression must be
// parenthesized under a parent operator to preserve the tree: lower
// precedence always, equal precedence on the right of - and /.
func childNeedsParens(child Expr, parentOp string, isRight bool) bool {
	b, ok := child.(*BinaryExpr)
	if !ok {
		return false
	}
	pc, pp := precedence(b.Op), precedence(parentOp)
	if pc < pp {
		return true
	}
	if pc == pp && isRight && (parentOp == "-" || parentOp == "/") {
		return true
	}
	return false
}
