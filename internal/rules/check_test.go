package rules

import (
	"strings"
	"testing"

	"chameleon/internal/spec"
)

// Advisory actions carry no capacity. The parser cannot write this shape,
// so build the rule sets programmatically, as API clients can.
func TestCheckRejectsAdvisoryActionWithCapacity(t *testing.T) {
	for _, kind := range []ActionKind{ActAvoid, ActEliminateCopies, ActRemoveIterator} {
		r := &Rule{
			Src:  spec.KindCollection,
			Cond: &Comparison{Op: ">", L: &OpCount{Name: "allOps"}, R: &NumberLit{Value: 0}},
			Act:  Action{Kind: kind, Capacity: CapSpec{Present: true, Value: 8}},
		}
		errs := Check(&RuleSet{Rules: []*Rule{r}}, DefaultParams)
		if len(errs) != 1 || !strings.Contains(errs[0].Error(), "capacity") {
			t.Errorf("%v with capacity: errs = %v, want one capacity error", kind, errs)
		}
		r.Act.Capacity = CapSpec{}
		if errs := Check(&RuleSet{Rules: []*Rule{r}}, DefaultParams); len(errs) != 0 {
			t.Errorf("%v without capacity: errs = %v, want none", kind, errs)
		}
	}
}

func TestCheckFlagsDuplicateRules(t *testing.T) {
	src := `
ArrayList : #contains > X && maxSize > Y -> LinkedHashSet "Time: first"
LinkedList : #get(int) > X -> ArrayList
ArrayList : #contains > X && maxSize > Y -> LinkedHashSet "Space: same rule, different message"
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	errs := Check(rs, DefaultParams)
	if len(errs) != 1 {
		t.Fatalf("errs = %v, want exactly one duplicate error", errs)
	}
	msg := errs[0].Error()
	if !strings.Contains(msg, "duplicate of rule 1") || !strings.Contains(msg, "line 2") {
		t.Errorf("duplicate error = %q, want a reference to rule 1 at line 2", msg)
	}
}

// Same condition and action but different srcType, or same srcType with a
// different capacity, is not a duplicate.
func TestCheckDuplicateRequiresFullIdentity(t *testing.T) {
	src := `
ArrayList : maxSize == 0 -> LazyArrayList
LinkedList : maxSize == 0 -> LazyArrayList
HashSet : maxSize < Z -> ArraySet(maxSize)
HashSet : maxSize < Z -> ArraySet(8)
`
	rs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(rs, DefaultParams); len(errs) != 0 {
		t.Errorf("errs = %v, want none", errs)
	}
}
