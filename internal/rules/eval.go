package rules

import (
	"math"

	"chameleon/internal/spec"
)

// Profile is the evaluator's view of one allocation context's statistics.
// profiler.Profile implements it.
type Profile interface {
	// OpMeanByName resolves "#name" (per-instance average count).
	OpMeanByName(name string) (float64, bool)
	// OpStdDevByName resolves "@name" (per-instance count std deviation).
	OpStdDevByName(name string) (float64, bool)
	// Metric resolves a tracedata/heapdata name.
	Metric(name string) (float64, bool)
	// Stability reports the metric's standard deviation for stability
	// gating (0 when the metric carries no tracked variance).
	Stability(name string) float64
	// SrcKind reports the kind used for srcType matching.
	SrcKind() spec.Kind
}

// Params binds the named tuning constants of a rule set (the X, Y
// thresholds of Table 2 — "the constants used in the rules are not shown,
// as they may be tuned per specific environment").
type Params map[string]float64

// EvalOptions tune rule evaluation.
type EvalOptions struct {
	// Params binds rule parameters.
	Params Params
	// MaxSizeStdDev is the stability threshold for size metrics
	// (Definition 3.1): a rule whose condition reads size/maxSize only
	// fires when the context's maximal-size standard deviation is at most
	// this value. The paper requires "size values to be tight, while
	// operation counts are not restricted" (§3.3.1). Zero means the
	// default of 8; negative disables stability gating.
	MaxSizeStdDev float64
}

// DefaultMaxSizeStdDev is the default size-stability threshold.
const DefaultMaxSizeStdDev = 8.0

func (o EvalOptions) sizeThreshold() float64 {
	switch {
	case o.MaxSizeStdDev < 0:
		return math.Inf(1)
	case o.MaxSizeStdDev == 0:
		return DefaultMaxSizeStdDev
	default:
		return o.MaxSizeStdDev
	}
}

// Match is one rule that fired for a profile.
type Match struct {
	Rule *Rule
	// Capacity is the resolved capacity suggestion (0 when the rule
	// carries none).
	Capacity int64
}

// EvalRule evaluates one rule against a profile. It reports whether the
// rule fires, applying srcType matching and stability gating before the
// condition.
func EvalRule(r *Rule, p Profile, opts EvalOptions) (Match, bool, error) {
	if !p.SrcKind().Matches(r.Src) {
		return Match{}, false, nil
	}
	// Stability gating: every size metric the condition reads must be
	// stable in this context — unless the rule checks that metric's
	// stability explicitly with stable(m), in which case the rule's own
	// condition governs (§3.3.1).
	thr := opts.sizeThreshold()
	explicit := ExplicitStables(r)
	for _, m := range MetricsOf(r) {
		if explicit[m] {
			continue
		}
		if p.Stability(m) > thr {
			return Match{}, false, nil
		}
	}
	ok, err := evalCond(r.Cond, p, opts.Params)
	if err != nil || !ok {
		return Match{}, false, err
	}
	m := Match{Rule: r}
	if r.Act.Capacity.Present {
		if r.Act.Capacity.FromMaxSize {
			if v, found := p.Metric("maxSize"); found {
				m.Capacity = int64(math.Ceil(v))
			}
		} else {
			m.Capacity = r.Act.Capacity.Value
		}
	}
	return m, true, nil
}

// Eval evaluates a rule set in order against a profile and returns every
// match; earlier matches carry higher priority.
func Eval(rs *RuleSet, p Profile, opts EvalOptions) ([]Match, error) {
	var out []Match
	for _, r := range rs.Rules {
		m, ok, err := EvalRule(r, p, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, m)
		}
	}
	return out, nil
}

func evalCond(c Cond, p Profile, params Params) (bool, error) {
	switch c := c.(type) {
	case *Comparison:
		l, err := evalExpr(c.L, p, params)
		if err != nil {
			return false, err
		}
		r, err := evalExpr(c.R, p, params)
		if err != nil {
			return false, err
		}
		const eps = 1e-9
		switch c.Op {
		case "==":
			return math.Abs(l-r) <= eps, nil
		case "!=":
			return math.Abs(l-r) > eps, nil
		case "<":
			return l < r, nil
		case "<=":
			return l <= r+eps, nil
		case ">":
			return l > r, nil
		case ">=":
			return l+eps >= r, nil
		}
		return false, errf(c.At, "unknown comparison operator %q", c.Op)
	case *AndCond:
		l, err := evalCond(c.L, p, params)
		if err != nil || !l {
			return false, err
		}
		return evalCond(c.R, p, params)
	case *OrCond:
		l, err := evalCond(c.L, p, params)
		if err != nil || l {
			return l, err
		}
		return evalCond(c.R, p, params)
	case *NotCond:
		v, err := evalCond(c.C, p, params)
		return !v, err
	}
	return false, errf(c.Pos(), "unknown condition node")
}

func evalExpr(e Expr, p Profile, params Params) (float64, error) {
	switch e := e.(type) {
	case *NumberLit:
		return e.Value, nil
	case *OpCount:
		v, ok := p.OpMeanByName(e.Name)
		if !ok {
			return 0, errf(e.At, "unknown operation %q", e.Name)
		}
		return v, nil
	case *OpVar:
		v, ok := p.OpStdDevByName(e.Name)
		if !ok {
			return 0, errf(e.At, "unknown operation %q", e.Name)
		}
		return v, nil
	case *MetricRef:
		v, ok := p.Metric(e.Name)
		if !ok {
			return 0, errf(e.At, "unknown metric %q", e.Name)
		}
		return v, nil
	case *ParamRef:
		v, ok := params[e.Name]
		if !ok {
			return 0, errf(e.At, "unbound parameter %q", e.Name)
		}
		return v, nil
	case *StableRef:
		return p.Stability(e.Name), nil
	case *BinaryExpr:
		l, err := evalExpr(e.L, p, params)
		if err != nil {
			return 0, err
		}
		r, err := evalExpr(e.R, p, params)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, nil // guarded ratio: x/0 is 0, like stats.Ratio
			}
			return l / r, nil
		}
		return 0, errf(e.At, "unknown operator %q", e.Op)
	}
	return 0, errf(e.Pos(), "unknown expression node")
}
