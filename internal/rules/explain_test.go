package rules

import (
	"strings"
	"testing"

	"chameleon/internal/spec"
)

func TestExplainFiringRule(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize < Z && maxSize > 0 -> ArrayMap(maxSize)")
	ex := Explain(r, smallHashMapProfile(), EvalOptions{Params: Params{"Z": 16}})
	if !ex.SrcMatched || !ex.Fired || ex.Err != nil {
		t.Fatalf("explanation: %+v", ex)
	}
	if len(ex.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(ex.Steps))
	}
	s0 := ex.Steps[0]
	if s0.Left != 7 || s0.Right != 16 || !s0.Result {
		t.Fatalf("step 0 = %+v", s0)
	}
	if ex.Capacity != 7 {
		t.Fatalf("capacity = %d", ex.Capacity)
	}
	text := ex.String()
	if !strings.Contains(text, "=> fires (capacity 7)") {
		t.Fatalf("rendering:\n%s", text)
	}
	if !strings.Contains(text, "maxSize < Z") {
		t.Fatalf("rendering lacks comparison:\n%s", text)
	}
}

func TestExplainShortCircuit(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize > 100 && #put > 0 -> ArrayMap")
	ex := Explain(r, smallHashMapProfile(), EvalOptions{})
	if ex.Fired {
		t.Fatal("should not fire")
	}
	// The second comparison never ran.
	if len(ex.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (short circuit)", len(ex.Steps))
	}
	if !strings.Contains(ex.String(), "=> does not fire") {
		t.Fatalf("rendering:\n%s", ex.String())
	}
}

func TestExplainSrcMismatch(t *testing.T) {
	r := mustParseRule(t, "HashSet : maxSize < 16 -> ArraySet")
	ex := Explain(r, smallHashMapProfile(), EvalOptions{})
	if ex.SrcMatched || ex.Fired || len(ex.Steps) != 0 {
		t.Fatalf("explanation: %+v", ex)
	}
	if !strings.Contains(ex.String(), "does not match") {
		t.Fatalf("rendering:\n%s", ex.String())
	}
}

func TestExplainStabilityGate(t *testing.T) {
	p := smallHashMapProfile()
	p.stability = map[string]float64{"maxSize": 99}
	r := mustParseRule(t, "HashMap : maxSize < 16 -> ArrayMap")
	ex := Explain(r, p, EvalOptions{})
	if ex.Fired || len(ex.StabilityBlocked) != 1 || ex.StabilityBlocked[0] != "maxSize" {
		t.Fatalf("explanation: %+v", ex)
	}
	if !strings.Contains(ex.String(), "stability gate") {
		t.Fatalf("rendering:\n%s", ex.String())
	}
}

func TestExplainError(t *testing.T) {
	r := mustParseRule(t, "HashMap : maxSize < UNBOUND -> ArrayMap")
	ex := Explain(r, smallHashMapProfile(), EvalOptions{})
	if ex.Err == nil {
		t.Fatal("no error recorded")
	}
	if !strings.Contains(ex.String(), "evaluation error") {
		t.Fatalf("rendering:\n%s", ex.String())
	}
}

// Explain and EvalRule must always agree on whether a rule fires.
func TestExplainAgreesWithEvalRule(t *testing.T) {
	profiles := []*fakeProfile{
		smallHashMapProfile(),
		{kind: spec.KindLinkedList, opMeans: map[string]float64{"get(int)": 100}, metrics: map[string]float64{"maxSize": 50}},
		{kind: spec.KindArrayList, metrics: map[string]float64{"maxSize": 0}},
		{kind: spec.KindHashSet, opMeans: map[string]float64{"add": 3}, metrics: map[string]float64{"maxSize": 3}},
	}
	opts := EvalOptions{Params: DefaultParams}
	for _, rs := range []*RuleSet{Builtin(), Extended()} {
		for _, r := range rs.Rules {
			for i, p := range profiles {
				_, fired, err := EvalRule(r, p, opts)
				ex := Explain(r, p, opts)
				if (err != nil) != (ex.Err != nil) {
					t.Fatalf("rule %q profile %d: error disagreement", PrintRule(r), i)
				}
				if err == nil && fired != ex.Fired {
					t.Fatalf("rule %q profile %d: EvalRule=%v Explain=%v", PrintRule(r), i, fired, ex.Fired)
				}
			}
		}
	}
}
