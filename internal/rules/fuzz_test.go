package rules

import (
	"strings"
	"testing"
)

// FuzzParse exercises the lexer and parser with arbitrary input: they must
// never panic, and whenever parsing succeeds the printed form must
// re-parse to the same printed form (print∘parse idempotence).
func FuzzParse(f *testing.F) {
	seeds := []string{
		BuiltinSource,
		ExtendedSource,
		"ArrayList : #contains > X && maxSize > Y -> LinkedHashSet",
		"HashMap : maxSize < 16 -> ArrayMap(maxSize)",
		"Collection : #allOps == 0 -> avoid \"Space/Time: m\"",
		"Collection : maxSize > initialCapacity -> setCapacity(maxSize)",
		"LinkedList : (#addAt + #addAllAt) / 2 < X -> ArrayList",
		"HashMap : stable(maxSize) < S -> OpenHashMap",
		"A : B -> C",
		": : :",
		"-> -> ->",
		"#@#@",
		`"unterminated`,
		"Collection : !(#add > 1) || #remove != 0 && size <= 2.5 -> removeIterator",
		strings.Repeat("(", 100),
		"ArrayList : #get(int) > 1 -> ArrayList // comment\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		printed := Print(rs)
		rs2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\n  in:  %q\n  out: %q\n  err: %v", src, printed, err)
		}
		if Print(rs2) != printed {
			t.Fatalf("print not idempotent:\n  1: %q\n  2: %q", printed, Print(rs2))
		}
	})
}

// FuzzVet asserts the analyzer total: on any rule set the parser accepts —
// vocabulary-clean or not — Vet must return without panicking, and its
// diagnostics must carry valid rule indices. The analyzer also runs under
// an empty parameter environment, where every parameter is unbound and all
// bounds widen.
func FuzzVet(f *testing.F) {
	seeds := []string{
		BuiltinSource,
		ExtendedSource,
		"ArrayList : maxSize < 2 && maxSize > Y -> LinkedHashSet",
		"List : #put > X -> ArrayList",
		"ArrayList : maxSize > Y -> ArrayList",
		"HashMap : #get(Object) / 0 > X -> ArrayMap",
		"HashSet : stable(maxSize) < S -> OpenHashSet",
		"HashMap : size > 0 && stable(maxSize) > S -> OpenHashMap",
		"Collection : !(#allOps == 0) || maxSize / maxSize > 1 -> avoid",
		"ArrayList : #frob > unboundParam -> LinkedList", // fails Check; Vet must still hold
		"LinkedList : #get(int) >= 0 -> ArrayList\nLinkedList : #get(int) > X -> ArrayList\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := Parse(src)
		if err != nil {
			return
		}
		for _, params := range []Params{DefaultParams, nil} {
			for _, d := range Vet(rs, params) {
				if d.Rule < 1 || d.Rule > len(rs.Rules) {
					t.Fatalf("diagnostic rule index %d out of range [1,%d]: %v", d.Rule, len(rs.Rules), d)
				}
				if d.Code == "" || d.Message == "" {
					t.Fatalf("diagnostic missing code or message: %+v", d)
				}
			}
		}
	})
}
