package rules

import (
	"fmt"
	"strings"
)

// Explanation is a trace of one rule evaluated against one profile: which
// gate stopped it, or which comparisons made it fire, with every operand's
// concrete value. It answers the tool-user's question "why (wasn't) my
// context replaced?".
type Explanation struct {
	Rule *Rule
	// Fired reports whether the rule matched.
	Fired bool
	// SrcMatched reports whether the srcType pattern matched the
	// context's declared kind.
	SrcMatched bool
	// StabilityBlocked lists metrics whose implicit stability gate
	// (Definition 3.1) stopped the rule before its condition ran.
	StabilityBlocked []string
	// Steps are the comparisons evaluated, in evaluation order
	// (short-circuited comparisons are absent).
	Steps []Step
	// Capacity is the resolved capacity when the rule fired.
	Capacity int64
	// Err is set when evaluation failed (e.g. unbound parameter).
	Err error
}

// Step is one evaluated comparison.
type Step struct {
	// Text is the comparison in concrete syntax.
	Text string
	// Left and Right are the evaluated operand values.
	Left, Right float64
	// Result is the comparison's outcome.
	Result bool
}

// Explain evaluates a rule against a profile, recording a step trace.
func Explain(r *Rule, p Profile, opts EvalOptions) Explanation {
	ex := Explanation{Rule: r}
	ex.SrcMatched = p.SrcKind().Matches(r.Src)
	if !ex.SrcMatched {
		return ex
	}
	thr := opts.sizeThreshold()
	explicit := ExplicitStables(r)
	for _, m := range MetricsOf(r) {
		if explicit[m] {
			continue
		}
		if p.Stability(m) > thr {
			ex.StabilityBlocked = append(ex.StabilityBlocked, m)
		}
	}
	if len(ex.StabilityBlocked) > 0 {
		return ex
	}
	fired, err := explainCond(r.Cond, p, opts.Params, &ex)
	if err != nil {
		ex.Err = err
		return ex
	}
	ex.Fired = fired
	if fired && r.Act.Capacity.Present {
		if r.Act.Capacity.FromMaxSize {
			if v, ok := p.Metric("maxSize"); ok {
				ex.Capacity = int64(v + 0.999999)
			}
		} else {
			ex.Capacity = r.Act.Capacity.Value
		}
	}
	return ex
}

func explainCond(c Cond, p Profile, params Params, ex *Explanation) (bool, error) {
	switch c := c.(type) {
	case *Comparison:
		l, err := evalExpr(c.L, p, params)
		if err != nil {
			return false, err
		}
		r, err := evalExpr(c.R, p, params)
		if err != nil {
			return false, err
		}
		res, err := evalCond(c, p, params)
		if err != nil {
			return false, err
		}
		ex.Steps = append(ex.Steps, Step{
			Text:   printCond(c, false),
			Left:   l,
			Right:  r,
			Result: res,
		})
		return res, nil
	case *AndCond:
		l, err := explainCond(c.L, p, params, ex)
		if err != nil || !l {
			return false, err
		}
		return explainCond(c.R, p, params, ex)
	case *OrCond:
		l, err := explainCond(c.L, p, params, ex)
		if err != nil || l {
			return l, err
		}
		return explainCond(c.R, p, params, ex)
	case *NotCond:
		v, err := explainCond(c.C, p, params, ex)
		return !v, err
	}
	return false, errf(c.Pos(), "unknown condition node")
}

// String renders the explanation.
func (ex Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule: %s\n", PrintRule(ex.Rule))
	switch {
	case !ex.SrcMatched:
		fmt.Fprintf(&b, "  srcType %s does not match the context's declared kind\n", ex.Rule.Src)
		return b.String()
	case len(ex.StabilityBlocked) > 0:
		fmt.Fprintf(&b, "  blocked by the implicit stability gate on: %s\n",
			strings.Join(ex.StabilityBlocked, ", "))
		return b.String()
	case ex.Err != nil:
		fmt.Fprintf(&b, "  evaluation error: %v\n", ex.Err)
		return b.String()
	}
	for _, s := range ex.Steps {
		fmt.Fprintf(&b, "  %-45s %10.2f vs %-10.2f %v\n", s.Text, s.Left, s.Right, s.Result)
	}
	if ex.Fired {
		if ex.Capacity > 0 {
			fmt.Fprintf(&b, "  => fires (capacity %d)\n", ex.Capacity)
		} else {
			fmt.Fprintf(&b, "  => fires\n")
		}
	} else {
		fmt.Fprintf(&b, "  => does not fire\n")
	}
	return b.String()
}
