// Package rules implements Chameleon's implementation-selection language
// (paper Fig. 4): a small rule DSL evaluated over the per-context profiling
// statistics of Table 1. A rule has the shape
//
//	srcType : cond -> action ["message"]
//
// where cond is a boolean combination of comparisons over operation counts
// (#add, #get(int), ...), operation-count variances (@add, ...), trace data
// (size, maxSize, initialCapacity), heap data (maxLive, totLive, maxUsed,
// totUsed, maxCore, totCore, ...) and named tuning parameters (X, Y, ...),
// and action is a replacement implementation type — optionally with a
// capacity, e.g. "ArrayList(maxSize)" — or one of the advisory fixes of
// Table 2 (setCapacity, avoid, eliminateCopies, removeIterator).
//
// The package provides the full little-language toolchain: lexer, parser,
// AST, static checker, evaluator, and a pretty-printer whose output
// re-parses to the same AST.
package rules

import "fmt"

// Pos is a source position within rule text.
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokHash   // #
	tokAt     // @
	tokColon  // :
	tokArrow  // ->
	tokLParen // (
	tokRParen // )
	tokAndAnd // &&
	tokOrOr   // ||
	tokNot    // !
	tokEq     // ==
	tokNeq    // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokPlus   // +
	tokMinus  // -
	tokStar   // *
	tokSlash  // /
	tokComma  // ,
)

var tokenNames = map[tokenKind]string{
	tokEOF:    "end of input",
	tokIdent:  "identifier",
	tokNumber: "number",
	tokString: "string",
	tokHash:   "'#'",
	tokAt:     "'@'",
	tokColon:  "':'",
	tokArrow:  "'->'",
	tokLParen: "'('",
	tokRParen: "')'",
	tokAndAnd: "'&&'",
	tokOrOr:   "'||'",
	tokNot:    "'!'",
	tokEq:     "'=='",
	tokNeq:    "'!='",
	tokLt:     "'<'",
	tokLe:     "'<='",
	tokGt:     "'>'",
	tokGe:     "'>='",
	tokPlus:   "'+'",
	tokMinus:  "'-'",
	tokStar:   "'*'",
	tokSlash:  "'/'",
	tokComma:  "','",
}

func (k tokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token.
type token struct {
	kind tokenKind
	text string
	pos  Pos
}

// Error is a positioned rule-language error (lex, parse, check or eval).
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("rules: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
