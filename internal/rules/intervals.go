package rules

import "math"

// This file is the abstract-interpretation substrate of the Vet pass: an
// interval domain over the extended reals, abstract evaluation of rule
// expressions under the known base domains (operation counts are >= 0,
// emptyFraction is in [0,1], parameters are substituted from the
// environment), a three-valued comparison over intervals, and a bounded
// DNF expansion with per-expression bound refinement that decides
// satisfiability and tautology of whole conditions. Everything is
// conservative: "always"/"never" verdicts are only produced when provable,
// and every over-approximation widens toward "maybe".

// ival is an interval over the extended reals. Endpoints produced by
// interval arithmetic are always treated as closed (a sound
// over-approximation); the open flags are set only by comparison-derived
// refinement constraints, where strictness decides emptiness (e.g.
// maxSize < 2 && maxSize >= 2 must come out empty).
type ival struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

func point(v float64) ival   { return ival{lo: v, hi: v} }
func nonneg() ival           { return ival{lo: 0, hi: math.Inf(1)} }
func fullIval() ival         { return ival{lo: math.Inf(-1), hi: math.Inf(1)} }
func unitIval() ival         { return ival{lo: 0, hi: 1} }
func (a ival) isPoint() bool { return a.lo == a.hi && !a.loOpen && !a.hiOpen && !math.IsInf(a.lo, 0) }

func (a ival) empty() bool {
	if math.IsNaN(a.lo) || math.IsNaN(a.hi) {
		return false // NaN endpoints mean "unknown": never claim empty
	}
	if a.lo > a.hi {
		return true
	}
	return a.lo == a.hi && (a.loOpen || a.hiOpen)
}

// intersect narrows a by b, keeping the strictest endpoint flags.
func (a ival) intersect(b ival) ival {
	out := a
	if b.lo > out.lo || (b.lo == out.lo && b.loOpen) {
		out.lo, out.loOpen = b.lo, b.loOpen
	}
	if b.hi < out.hi || (b.hi == out.hi && b.hiOpen) {
		out.hi, out.hiOpen = b.hi, b.hiOpen
	}
	return out
}

// subset reports whether a is contained in b (openness-aware).
func (a ival) subset(b ival) bool {
	if a.empty() {
		return true
	}
	loOK := a.lo > b.lo || (a.lo == b.lo && (a.loOpen || !b.loOpen))
	hiOK := a.hi < b.hi || (a.hi == b.hi && (a.hiOpen || !b.hiOpen))
	return loOK && hiOK
}

// hull is the smallest closed interval containing every candidate; any NaN
// candidate (an indeterminate endpoint product like 0*inf) widens to the
// full line.
func hull(cands ...float64) ival {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range cands {
		if math.IsNaN(c) {
			return fullIval()
		}
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	return ival{lo: lo, hi: hi}
}

func (a ival) add(b ival) ival { return ival{lo: a.lo + b.lo, hi: a.hi + b.hi} }
func (a ival) sub(b ival) ival { return ival{lo: a.lo - b.hi, hi: a.hi - b.lo} }

func (a ival) mul(b ival) ival {
	return hull(a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi)
}

// div applies the rule language's guarded division (x/0 = 0, like
// stats.Ratio). A divisor that is exactly zero yields exactly zero; a
// divisor interval touching zero widens conservatively.
func (a ival) div(b ival) ival {
	if b.isPoint() && b.lo == 0 {
		return point(0)
	}
	if b.lo > 0 || b.hi < 0 { // divisor bounded away from zero
		return hull(a.lo/b.lo, a.lo/b.hi, a.hi/b.lo, a.hi/b.hi)
	}
	// Divisor may be zero or spans signs. The common rule-language shape
	// is a nonnegative ratio of counts: quotients stay nonnegative and the
	// guarded zero is already included.
	if a.lo >= 0 && b.lo >= 0 {
		return nonneg()
	}
	return fullIval()
}

// metricInterval is the base domain of a tracedata/heapdata metric: every
// shipped metric is a count, size or byte total and hence nonnegative;
// emptyFraction is a fraction. Unknown names (possible before Check has
// passed) get the full line.
func metricInterval(name string) ival {
	switch {
	case name == "emptyFraction", name == "crossGoroutineFraction", name == "ownerStability":
		return unitIval()
	case isMetricName(name):
		return nonneg()
	default:
		return fullIval()
	}
}

// exprInterval abstractly evaluates an expression to an interval, with
// parameters substituted from the environment. Unbound parameters (flagged
// separately by Check) get the full line so no verdict depends on them.
func exprInterval(e Expr, params Params) ival {
	switch e := e.(type) {
	case *NumberLit:
		return point(e.Value)
	case *OpCount, *OpVar:
		return nonneg() // counts and their deviations are nonnegative
	case *MetricRef:
		return metricInterval(e.Name)
	case *ParamRef:
		if v, ok := params[e.Name]; ok {
			return point(v)
		}
		return fullIval()
	case *StableRef:
		return nonneg() // a standard deviation
	case *BinaryExpr:
		l := exprInterval(e.L, params)
		r := exprInterval(e.R, params)
		switch e.Op {
		case "+":
			return l.add(r)
		case "-":
			return l.sub(r)
		case "*":
			return l.mul(r)
		case "/":
			return l.div(r)
		}
	}
	return fullIval()
}

// tri is a three-valued truth verdict.
type tri int

const (
	triMaybe tri = iota
	triAlways
	triNever
)

// compareIvals decides a comparison between two (closed) intervals.
// Verdicts use the exact relational semantics; the evaluator's epsilon
// tolerance only blurs comparisons within 1e-9, far below any threshold a
// rule would write, so the verdicts remain trustworthy in practice.
func compareIvals(op string, a, b ival) tri {
	switch op {
	case "<":
		if a.hi < b.lo {
			return triAlways
		}
		if a.lo >= b.hi {
			return triNever
		}
	case "<=":
		if a.hi <= b.lo {
			return triAlways
		}
		if a.lo > b.hi {
			return triNever
		}
	case ">":
		return compareIvals("<", b, a)
	case ">=":
		return compareIvals("<=", b, a)
	case "==":
		if a.isPoint() && b.isPoint() && a.lo == b.lo {
			return triAlways
		}
		if a.hi < b.lo || b.hi < a.lo {
			return triNever
		}
	case "!=":
		switch compareIvals("==", a, b) {
		case triAlways:
			return triNever
		case triNever:
			return triAlways
		}
	}
	return triMaybe
}

// negComparisonOp gives the operator of the negated comparison.
func negComparisonOp(op string) string {
	switch op {
	case "==":
		return "!="
	case "!=":
		return "=="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

// flipComparisonOp mirrors the operator for a swapped operand order
// (a op b  <=>  b flip(op) a).
func flipComparisonOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // ==, != are symmetric
}

// lit is one literal of a DNF conjunct: a comparison, possibly negated.
type lit struct {
	cmp *Comparison
	neg bool
}

func (l lit) op() string {
	if l.neg {
		return negComparisonOp(l.cmp.Op)
	}
	return l.cmp.Op
}

// maxConjuncts bounds the DNF expansion; conditions past the bound get no
// satisfiability verdict (conservatively "maybe"). Hand-written rules are
// tiny; only fuzzers reach this.
const maxConjuncts = 64

// dnfCond expands a condition into disjunctive normal form with negation
// pushed to the leaves. It returns nil (unknown) when the expansion would
// exceed maxConjuncts.
func dnfCond(c Cond, neg bool) [][]lit {
	switch c := c.(type) {
	case *Comparison:
		return [][]lit{{lit{cmp: c, neg: neg}}}
	case *NotCond:
		return dnfCond(c.C, !neg)
	case *AndCond, *OrCond:
		var l, r Cond
		conj := false // combine children conjunctively?
		switch c := c.(type) {
		case *AndCond:
			l, r, conj = c.L, c.R, !neg
		case *OrCond:
			l, r, conj = c.L, c.R, neg
		}
		dl := dnfCond(l, neg)
		dr := dnfCond(r, neg)
		if dl == nil || dr == nil {
			return nil
		}
		if !conj {
			out := append(append([][]lit{}, dl...), dr...)
			if len(out) > maxConjuncts {
				return nil
			}
			return out
		}
		if len(dl)*len(dr) > maxConjuncts {
			return nil
		}
		out := make([][]lit, 0, len(dl)*len(dr))
		for _, a := range dl {
			for _, b := range dr {
				cj := make([]lit, 0, len(a)+len(b))
				cj = append(cj, a...)
				cj = append(cj, b...)
				out = append(out, cj)
			}
		}
		return out
	}
	return nil
}

// constraintIval is the set of values an expression may take for the
// comparison "expr op c" to hold.
func constraintIval(op string, c float64) (ival, bool) {
	inf := math.Inf(1)
	switch op {
	case "<":
		return ival{lo: -inf, hi: c, hiOpen: true}, true
	case "<=":
		return ival{lo: -inf, hi: c}, true
	case ">":
		return ival{lo: c, hi: inf, loOpen: true}, true
	case ">=":
		return ival{lo: c, hi: inf}, true
	case "==":
		return point(c), true
	}
	return ival{}, false // != is not an interval
}

// conjunct is one analyzed DNF conjunct: whether it is provably
// unsatisfiable, and the refined per-expression bounds (keyed by the
// expression's printed form) derived from its var-versus-constant
// comparisons.
type conjunct struct {
	unsat bool
	env   map[string]ival
}

// analyzeConjunct refines bounds across the literals of one conjunct.
// Comparisons between an arbitrary expression and a point constant narrow
// the expression's interval (intersected across literals, so
// "maxSize < 2 && maxSize > Y" with Y = 32 comes out empty); everything
// else is checked pointwise against the base intervals.
func analyzeConjunct(lits []lit, params Params) conjunct {
	cj := conjunct{env: map[string]ival{}}
	refine := func(e Expr, op string, c float64) {
		constr, ok := constraintIval(op, c)
		key := printExpr(e, false)
		cur, have := cj.env[key]
		if !have {
			cur = exprInterval(e, params)
		}
		if ok {
			cur = cur.intersect(constr)
		} else if op == "!=" && cur.isPoint() && cur.lo == c {
			cj.unsat = true
		}
		cj.env[key] = cur
		if cur.empty() {
			cj.unsat = true
		}
	}
	for _, l := range lits {
		op := l.op()
		li := exprInterval(l.cmp.L, params)
		ri := exprInterval(l.cmp.R, params)
		switch {
		case li.isPoint() && ri.isPoint():
			if compareIvals(op, li, ri) == triNever {
				cj.unsat = true
			}
		case ri.isPoint():
			refine(l.cmp.L, op, ri.lo)
		case li.isPoint():
			refine(l.cmp.R, flipComparisonOp(op), li.lo)
		default:
			if compareIvals(op, li, ri) == triNever {
				cj.unsat = true
			}
		}
	}
	return cj
}

// condAnalysis is the satisfiability view of one condition.
type condAnalysis struct {
	known     bool // false when the DNF expansion was cut off
	conjuncts []conjunct
}

func analyzeCond(c Cond, params Params) condAnalysis {
	d := dnfCond(c, false)
	if d == nil {
		return condAnalysis{}
	}
	out := condAnalysis{known: true, conjuncts: make([]conjunct, 0, len(d))}
	for _, lits := range d {
		out.conjuncts = append(out.conjuncts, analyzeConjunct(lits, params))
	}
	return out
}

// satisfiable reports whether some conjunct survived refinement; when the
// analysis was cut off it errs toward true.
func (a condAnalysis) satisfiable() bool {
	if !a.known {
		return true
	}
	for _, cj := range a.conjuncts {
		if !cj.unsat {
			return true
		}
	}
	return false
}

// condAlwaysTrue reports whether the condition is provably a tautology:
// its negation is unsatisfiable.
func condAlwaysTrue(c Cond, params Params) bool {
	d := dnfCond(c, true)
	if d == nil {
		return false
	}
	for _, lits := range d {
		if !analyzeConjunct(lits, params).unsat {
			return false
		}
	}
	return true
}

// normalizeComparison reduces a comparison to "key-expression within
// interval" when one side is a point constant: the allowed interval is the
// comparison constraint intersected with the expression's base domain.
func normalizeComparison(cmp *Comparison, op string, params Params) (key string, allowed ival, ok bool) {
	li := exprInterval(cmp.L, params)
	ri := exprInterval(cmp.R, params)
	var e Expr
	var c float64
	switch {
	case ri.isPoint() && !li.isPoint():
		e, c = cmp.L, ri.lo
	case li.isPoint() && !ri.isPoint():
		e, c, op = cmp.R, li.lo, flipComparisonOp(op)
	default:
		return "", ival{}, false
	}
	constr, ok := constraintIval(op, c)
	if !ok {
		return "", ival{}, false
	}
	return printExpr(e, false), exprInterval(e, params).intersect(constr), true
}

// comparisonImplies conservatively decides cmp-a => cmp-b: syntactic
// equality, a provably-false antecedent, a provably-true consequent, or
// bound entailment between two comparisons normalized to the same
// expression.
func comparisonImplies(a, b *Comparison, params Params) bool {
	if printCond(a, false) == printCond(b, false) {
		return true
	}
	if compareIvals(a.Op, exprInterval(a.L, params), exprInterval(a.R, params)) == triNever {
		return true
	}
	if compareIvals(b.Op, exprInterval(b.L, params), exprInterval(b.R, params)) == triAlways {
		return true
	}
	ka, ia, oka := normalizeComparison(a, a.Op, params)
	kb, ib, okb := normalizeComparison(b, b.Op, params)
	return oka && okb && ka == kb && ia.subset(ib)
}

// condImplies conservatively decides a => b over full conditions. False
// means "not provable", never "provably not".
func condImplies(a, b Cond, params Params) bool {
	// A provably-false antecedent or provably-true consequent implies
	// anything / is implied by anything.
	if condAlwaysTrue(b, params) {
		return true
	}
	if !analyzeCond(a, params).satisfiable() {
		return true
	}
	switch b := b.(type) {
	case *AndCond:
		return condImplies(a, b.L, params) && condImplies(a, b.R, params)
	case *OrCond:
		if condImplies(a, b.L, params) || condImplies(a, b.R, params) {
			return true
		}
	}
	switch a := a.(type) {
	case *OrCond:
		return condImplies(a.L, b, params) && condImplies(a.R, b, params)
	case *AndCond:
		if condImplies(a.L, b, params) || condImplies(a.R, b, params) {
			return true
		}
	}
	ca, okA := a.(*Comparison)
	cb, okB := b.(*Comparison)
	if okA && okB {
		return comparisonImplies(ca, cb, params)
	}
	if okB {
		// a is a conjunction whose single literals were already tried; a
		// disjunction or negation has no further conservative handle.
		return false
	}
	return printCond(a, false) == printCond(b, false)
}
