package rules

import (
	"fmt"

	"chameleon/internal/faults"
)

// PanicError reports a panic recovered during rule evaluation. The guarded
// online path (internal/adaptive) treats it as a rule-set failure: the
// context degrades to its default decision instead of the panic unwinding
// through the allocating goroutine.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("rules: panic during rule evaluation: %v", e.Value)
}

// EvalSafe evaluates a rule set like Eval but contains panics: a panicking
// rule set (or an injected fault — see internal/faults) returns a
// *PanicError instead of unwinding the caller. This is the entry point the
// online selector uses; allocation paths must never be crashed by a bad
// rule set (docs/ROBUSTNESS.md).
func EvalSafe(rs *RuleSet, p Profile, opts EvalOptions) (ms []Match, err error) {
	defer func() {
		if r := recover(); r != nil {
			ms, err = nil, &PanicError{Value: r}
		}
	}()
	if v, fire := faults.RuleEvalPanic(); fire {
		panic(v)
	}
	return Eval(rs, p, opts)
}
