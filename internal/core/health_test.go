package core

import (
	"encoding/json"
	"testing"
	"time"

	"chameleon/internal/collections"
	"chameleon/internal/faults"
	"chameleon/internal/governor"
)

// TestSessionHealthBudget: Health reports the budget position after a run
// that overflows it, and the snapshot marshals for -health-out.
func TestSessionHealthBudget(t *testing.T) {
	s := NewSession(Config{MaxContexts: 4})
	rt := s.Runtime()
	for i := 0; i < 64; i++ {
		at := collections.At("health.hot:1")
		if i%2 == 1 {
			at = collections.At(randLabel(i))
		}
		l := collections.NewArrayList[int](rt, at)
		l.Add(i)
		l.Free()
	}
	s.FinalGC()

	h := s.Health()
	if h.Tier != governor.TierFull {
		t.Fatalf("ungoverned session tier = %v, want full", h.Tier)
	}
	if h.Governor != nil {
		t.Fatal("ungoverned session carries a governor health block")
	}
	if h.Budget.MaxContexts != 4 {
		t.Fatalf("budget = %d, want 4", h.Budget.MaxContexts)
	}
	if h.Budget.TableContexts > 5 {
		t.Fatalf("table contexts = %d, want <= budget+overflow = 5", h.Budget.TableContexts)
	}
	if h.Budget.TableOverflowAdmissions == 0 {
		t.Fatal("no denials recorded past the budget")
	}
	if h.Budget.OverflowAllocs == 0 {
		t.Fatal("no overflow-attributed allocations")
	}
	if _, err := json.Marshal(h); err != nil {
		t.Fatalf("health snapshot does not marshal: %v", err)
	}
}

// randLabel derives a unique static label from i (helper, no PRNG needed).
func randLabel(i int) string {
	return "health.cold:" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + ":7"
}

// TestSessionGovernorDegradesAndPauses: an injected overhead spike steps
// the governed session down the ladder; the runtime tier follows, the
// online selector pauses in heap-only, and recovery resumes it.
func TestSessionGovernorDegradesAndPauses(t *testing.T) {
	var spike int64
	faults.ArmT(t, &faults.Plan{OverheadSpike: func(src string, d int64) (int64, bool) {
		return d + spike, true
	}})
	s := NewSession(Config{
		Online:         true,
		OverheadBudget: 0.05,
		GovernorOptions: governor.Config{
			RecoverTicks: 1, SampledRate: 8, MaxSampledRate: 8,
		},
	})
	const tick = 100 * time.Millisecond

	spike = int64(0.20 * float64(tick.Nanoseconds())) // 20% >> 5% target
	s.Governor.Tick(tick)
	if got := s.Runtime().ProfilingTier(); got != governor.TierSampled {
		t.Fatalf("runtime tier = %v after one breach, want sampled", got)
	}
	if s.Selector.Paused() {
		t.Fatal("selector paused in the sampled tier")
	}
	s.Governor.Tick(tick)
	if got := s.Runtime().ProfilingTier(); got != governor.TierHeapOnly {
		t.Fatalf("runtime tier = %v after two breaches, want heap-only", got)
	}
	if !s.Selector.Paused() {
		t.Fatal("selector not paused in the heap-only tier")
	}
	s.Governor.Tick(tick)
	if got := s.Health().Tier; got != governor.TierOff {
		t.Fatalf("health tier = %v after three breaches, want off", got)
	}

	// In the off tier allocations carry no profiling at all, but still work.
	rt := s.Runtime()
	l := collections.NewArrayList[int](rt, collections.At("gov.off:1"))
	l.Add(1)
	l.Free()
	if live := s.Prof.LiveInstances(); live != 0 {
		t.Fatalf("off-tier allocation left %d live instances", live)
	}

	spike = 0
	for i := 0; i < 3; i++ {
		s.Governor.Tick(tick)
	}
	if got := s.Runtime().ProfilingTier(); got != governor.TierFull {
		t.Fatalf("runtime tier = %v after sustained calm, want full", got)
	}
	if s.Selector.Paused() {
		t.Fatal("selector still paused after recovery to full")
	}
	h := s.Health()
	if h.Governor == nil || h.Governor.TransitionCount != 6 {
		t.Fatalf("governor health = %+v, want 6 transitions", h.Governor)
	}
}

// TestSessionStartStopGovernor: the wall-clock ticker path works through
// the session wrappers and is a no-op on ungoverned sessions.
func TestSessionStartStopGovernor(t *testing.T) {
	plain := NewSession(Config{})
	plain.StartGovernor(time.Millisecond) // no governor: must not panic
	plain.StopGovernor()

	gov := NewSession(Config{OverheadBudget: 0.05})
	gov.StartGovernor(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	gov.StopGovernor()
	if h := gov.Health(); h.Governor == nil || h.Governor.Ticks == 0 {
		t.Fatalf("governed session never ticked: %+v", h.Governor)
	}
}
