package core

import (
	"testing"

	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/profiler"
	"chameleon/internal/workloads"
)

// runServerSession drives the server workload through one fully wired
// Session with the given worker count.
func runServerSession(t *testing.T, workers int) (*Session, uint64) {
	t.Helper()
	s := NewSession(Config{Mode: alloctx.Static, GCThreshold: 64 << 10})
	sum := workloads.RunServerWorkers(s.Runtime(), workloads.Baseline, 120, workers)
	s.FinalGC()
	return s, sum
}

// TestConcurrentSessionMatchesSequential drives the full pipeline —
// wrappers, profiler, heap, GC — from 8 goroutines sharing one Session and
// checks that every schedule-independent statistic matches the
// single-goroutine run exactly. Run under -race this is also the pipeline's
// data-race test.
func TestConcurrentSessionMatchesSequential(t *testing.T) {
	seq, seqSum := runServerSession(t, 1)
	con, conSum := runServerSession(t, 8)

	if seqSum != conSum {
		t.Fatalf("checksum diverged: sequential %#x, concurrent %#x", seqSum, conSum)
	}

	// Every request frees what it allocates, so both heaps must drain.
	if n := con.Heap.LiveCollections(); n != 0 {
		t.Fatalf("concurrent run leaked %d collections", n)
	}
	if b := con.Heap.LiveBytes(); b != 0 {
		t.Fatalf("concurrent run leaked %d live bytes", b)
	}
	if n := con.Prof.LiveInstances(); n != 0 {
		t.Fatalf("concurrent run leaked %d profiler instances", n)
	}

	seqStats, conStats := seq.Heap.Stats(), con.Heap.Stats()
	if seqStats.TotalAllocated != conStats.TotalAllocated {
		t.Fatalf("allocated volume diverged: %d vs %d", seqStats.TotalAllocated, conStats.TotalAllocated)
	}
	// Cycle triggers are claimed by threshold crossing, so the same volume
	// must produce the same cycle count regardless of interleaving.
	if seqStats.NumGC != conStats.NumGC {
		t.Fatalf("GC cycles diverged: %d vs %d", seqStats.NumGC, conStats.NumGC)
	}

	// Per-context trace aggregates are sums of per-instance integers, so
	// they are schedule-independent even though fold order differs.
	index := func(ps []*profiler.Profile) map[string]*profiler.Profile {
		m := make(map[string]*profiler.Profile, len(ps))
		for _, p := range ps {
			m[p.Context.String()] = p
		}
		return m
	}
	seqProfiles := index(seq.Prof.Snapshot())
	conProfiles := index(con.Prof.Snapshot())
	if len(seqProfiles) != len(conProfiles) {
		t.Fatalf("context count diverged: %d vs %d", len(seqProfiles), len(conProfiles))
	}
	for label, sp := range seqProfiles {
		cp, ok := conProfiles[label]
		if !ok {
			t.Fatalf("context %q missing from the concurrent run", label)
		}
		if sp.Allocs != cp.Allocs {
			t.Errorf("%s: allocs %d vs %d", label, sp.Allocs, cp.Allocs)
		}
		if sp.Live != 0 || cp.Live != 0 {
			t.Errorf("%s: live %d vs %d, want 0", label, sp.Live, cp.Live)
		}
		if sp.OpTotals != cp.OpTotals {
			t.Errorf("%s: op totals diverged:\n  seq %v\n  con %v", label, sp.OpTotals, cp.OpTotals)
		}
		if sp.EmptyIterators != cp.EmptyIterators {
			t.Errorf("%s: empty iterators %d vs %d", label, sp.EmptyIterators, cp.EmptyIterators)
		}
	}
}

// TestConcurrentOnlineSession runs the concurrent server with the online
// selector enabled: replacements must not corrupt results, and the session
// must still drain.
func TestConcurrentOnlineSession(t *testing.T) {
	s := NewSession(Config{Mode: alloctx.Static, Online: true, GCThreshold: 64 << 10})
	sum := workloads.RunServerWorkers(s.Runtime(), workloads.Baseline, 120, 8)
	s.FinalGC()

	want := workloads.RunServer(collections.Plain(), workloads.Baseline, 120)
	if sum != want {
		t.Fatalf("online concurrent checksum %#x, plain %#x", sum, want)
	}
	if n := s.Heap.LiveCollections(); n != 0 {
		t.Fatalf("leaked %d collections", n)
	}
	if s.Selector.Decides() == 0 {
		t.Fatalf("online selector never evaluated a context")
	}
}
