package core

import (
	"strings"
	"testing"

	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/heap"
	"chameleon/internal/spec"
)

func TestSessionEndToEnd(t *testing.T) {
	s := NewSession(Config{GCThreshold: 4 << 10})
	rt := s.Runtime()

	var maps []*collections.Map[int, int]
	for i := 0; i < 50; i++ {
		m := collections.NewHashMap[int, int](rt, collections.At("app.Factory:10;app.Main:20"))
		for j := 0; j < 5; j++ {
			m.Put(j, j)
		}
		for j := 0; j < 60; j++ {
			m.Get(j % 5)
		}
		maps = append(maps, m)
	}
	for _, m := range maps {
		m.Free()
	}
	s.FinalGC()

	if s.Heap.Stats().NumGC < 2 {
		t.Fatalf("GCs = %d", s.Heap.Stats().NumGC)
	}
	rep, err := s.Report(advisor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	if rep.Suggestions[0].Primary.Rule.Act.Impl != spec.KindArrayMap {
		t.Fatalf("suggestion = %s", advisor.Describe(rep.Suggestions[0].Primary))
	}
	if !strings.Contains(rep.Format(), "app.Factory:10;app.Main:20") {
		t.Fatalf("report lacks context:\n%s", rep.Format())
	}

	pts := s.PotentialSeries()
	if len(pts) == 0 {
		t.Fatal("no series")
	}
	for _, p := range pts {
		if p.UsedPct > p.LivePct+1e-9 || p.CorePct > p.UsedPct+1e-9 {
			t.Fatalf("nesting violated: %+v", p)
		}
	}
}

func TestSessionOnlineMode(t *testing.T) {
	s := NewSession(Config{Online: true, GCThreshold: 1 << 20})
	if s.Selector == nil {
		t.Fatal("online session lacks selector")
	}
	rt := s.Runtime()
	for i := 0; i < 40; i++ {
		m := collections.NewHashMap[int, int](rt, collections.At("online.site:1"))
		m.Put(1, 1)
		m.Free()
	}
	m := collections.NewHashMap[int, int](rt, collections.At("online.site:1"))
	if m.Kind() != spec.KindArrayMap {
		t.Fatalf("online replacement did not happen: %v", m.Kind())
	}
	m.Free()
}

func TestSessionNoProfiling(t *testing.T) {
	s := NewSession(Config{NoProfiling: true})
	if s.Prof != nil {
		t.Fatal("NoProfiling session has a profiler")
	}
	rt := s.Runtime()
	l := collections.NewArrayList[int](rt, collections.At("x:1"))
	l.Add(1)
	l.Free()
	rep, err := s.Report(advisor.Options{})
	if err != nil || len(rep.Suggestions) != 0 {
		t.Fatalf("report on unprofiled session: %v %v", rep, err)
	}
	// Heap simulation still works.
	if s.Heap.Stats().TotalAllocated == 0 {
		t.Fatal("heap accounting off")
	}
}

func TestSessionDynamicMode(t *testing.T) {
	s := NewSession(Config{Mode: alloctx.Dynamic, GCThreshold: 1 << 20})
	l := collections.NewArrayList[int](s.Runtime())
	l.Add(1)
	l.Free()
	profiles := s.Prof.Snapshot()
	if len(profiles) != 1 || profiles[0].Context.Key() == 0 {
		t.Fatalf("dynamic session did not capture a context")
	}
}

func TestSessionHeapLimit(t *testing.T) {
	s := NewSession(Config{Limit: 4096, NoProfiling: true, DropSnapshots: true})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no OOM panic")
		}
		oom, ok := r.(heap.OOMError)
		if !ok {
			t.Fatalf("panic value %T", r)
		}
		if oom.Limit != 4096 || oom.Needed <= 4096 {
			t.Fatalf("oom = %+v", oom)
		}
		if oom.Error() == "" {
			t.Fatal("empty error text")
		}
	}()
	for i := 0; i < 100; i++ {
		_ = s.Heap.AllocData(256)
	}
}

func TestSessionFixedSelector(t *testing.T) {
	plan := collections.SelectorFunc(func(_ uint64, declared spec.Kind, def collections.Decision) collections.Decision {
		if declared == spec.KindHashMap {
			return collections.Decision{Impl: spec.KindArrayMap, Capacity: 4}
		}
		return def
	})
	s := NewSession(Config{Selector: plan})
	m := collections.NewHashMap[int, int](s.Runtime(), collections.At("sel:1"))
	if m.Kind() != spec.KindArrayMap {
		t.Fatalf("fixed selector ignored: %v", m.Kind())
	}
	m.Free()
}
