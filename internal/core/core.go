// Package core assembles the Chameleon tool from its parts (paper Fig. 1):
// a Session wires the simulated collection-aware heap, the semantic
// profiler, allocation-context capture, the collections runtime and —
// optionally — the fully-automatic online selector, and exposes the two
// tool outputs: per-cycle potential series (Fig. 2 / Fig. 8) and the
// rule-engine suggestion report (§2.1, Fig. 3).
package core

import (
	"time"

	"chameleon/internal/adaptive"
	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/governor"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/stats"
)

// Config configures a Session.
type Config struct {
	// Mode selects allocation-context capture (default Static).
	Mode alloctx.Mode
	// Depth is the dynamic-capture partial-context depth (default 2).
	Depth int
	// SampleRate captures 1 in N dynamic contexts (<=1: all).
	SampleRate int
	// Model is the simulated object layout (default heap.Model32).
	Model heap.SizeModel
	// GCThreshold is the allocation volume between GC cycles (default 1 MiB).
	GCThreshold int64
	// KeepSnapshots retains per-cycle statistics for the Fig. 2 / Fig. 8
	// series (default true).
	DropSnapshots bool
	// KeepContexts additionally retains per-context data inside each kept
	// snapshot, enabling the §4.4 context-level time series.
	KeepContexts bool
	// Online enables the fully-automatic selector (§3.3.2).
	Online bool
	// OnlineOptions tune the online selector.
	OnlineOptions adaptive.Options
	// Selector installs a fixed selector (e.g. an advisor.Plan derived
	// from a previous run's report) when Online is false.
	Selector collections.Selector
	// NoProfiling turns trace profiling off entirely (heap simulation
	// still runs); used for baseline timing runs.
	NoProfiling bool
	// Limit, when positive, is a hard cap on simulated live bytes; an
	// allocation exceeding it panics with heap.OOMError (used by the
	// minimal-heap search).
	Limit int64
	// Generational selects the two-region collector (see heap.Config);
	// per-context statistics come from major cycles only and are
	// identical to the full collector's (§4.3.2).
	Generational bool
	// MinorPerMajor is the generational minor:major cadence (default 4).
	MinorPerMajor int
	// MaxContexts, when positive, is the context budget: the alloctx
	// table interns at most this many distinct contexts (further captures
	// alias to the shared overflow context), the profiler evicts cold
	// contexts into the overflow aggregate to stay near the budget, and
	// GC cycles cap their per-context maps the same way — bounding
	// profiling memory under unbounded context cardinality
	// (docs/ROBUSTNESS.md "Budgets").
	MaxContexts int
	// OverheadBudget, when positive, enables the overhead governor with
	// this target profiling-cost fraction (e.g. 0.05 = 5% of wall time);
	// the governor walks the runtime down the degradation ladder when the
	// self-measured cost exceeds it. Zero leaves the governor off.
	OverheadBudget float64
	// GovernorOptions tune the governor beyond the budget; the
	// TargetOverhead field is overridden by OverheadBudget.
	GovernorOptions governor.Config
}

// Session is one profiled program run.
type Session struct {
	Heap     *heap.Heap
	Prof     *profiler.Profiler
	Contexts *alloctx.Table
	Selector *adaptive.Selector
	// Governor is the overhead governor, non-nil only when
	// Config.OverheadBudget was positive. Start/Stop it around the run
	// (the CLI does), or drive Tick directly in tests.
	Governor *governor.Governor

	rt          *collections.Runtime
	meter       *governor.Meter
	maxContexts int
}

// NewSession builds a fully wired session.
func NewSession(cfg Config) *Session {
	s := &Session{Contexts: alloctx.NewTable(), maxContexts: cfg.MaxContexts}
	if cfg.Mode == 0 {
		cfg.Mode = alloctx.Static
	}
	var overflowKey uint64
	if cfg.MaxContexts > 0 {
		s.Contexts.SetMaxContexts(cfg.MaxContexts)
		overflowKey = s.Contexts.Overflow().Key()
	}
	if cfg.OverheadBudget > 0 {
		s.meter = governor.NewMeter()
	}
	var obs heap.Observer
	if !cfg.NoProfiling {
		s.Prof = profiler.New()
		if cfg.MaxContexts > 0 {
			s.Prof.SetBudget(cfg.MaxContexts, s.Contexts.Overflow())
		}
		s.Prof.SetMeter(s.meter)
		obs = s.Prof
	}
	s.Heap = heap.New(heap.Config{
		Model:              cfg.Model,
		GCThreshold:        cfg.GCThreshold,
		Observer:           obs,
		KeepSnapshots:      !cfg.DropSnapshots,
		KeepContexts:       cfg.KeepContexts,
		Generational:       cfg.Generational,
		MinorPerMajor:      cfg.MinorPerMajor,
		Limit:              cfg.Limit,
		MaxContexts:        cfg.MaxContexts,
		OverflowContextKey: overflowKey,
		Meter:              s.meter,
	})
	sel := cfg.Selector
	if cfg.Online && s.Prof != nil {
		s.Selector = adaptive.New(s.Prof, cfg.OnlineOptions)
		sel = s.Selector
	}
	s.rt = collections.NewRuntime(collections.Config{
		Heap:       s.Heap,
		Profiler:   s.Prof,
		Contexts:   s.Contexts,
		Mode:       cfg.Mode,
		Depth:      cfg.Depth,
		SampleRate: cfg.SampleRate,
		Selector:   sel,
		Meter:      s.meter,
	})
	if cfg.OverheadBudget > 0 {
		gcfg := cfg.GovernorOptions
		gcfg.TargetOverhead = cfg.OverheadBudget
		s.Governor = governor.New(s.meter, gcfg)
		rt, adaptiveSel := s.rt, s.Selector
		s.Governor.SetApply(func(t governor.Tier, rate int) {
			rt.SetProfilingTier(t, rate)
			if adaptiveSel != nil {
				// Heap-only and off shed instance profiling; verification
				// would judge decisions on starved evidence windows.
				adaptiveSel.Pause(t >= governor.TierHeapOnly)
			}
		})
	}
	return s
}

// Runtime reports the collections runtime workloads allocate through.
func (s *Session) Runtime() *collections.Runtime { return s.rt }

// StartGovernor begins governor ticking at the given interval (<=0 picks
// the default); a no-op when the session has no governor. Call
// StopGovernor before reading end-of-run reports.
func (s *Session) StartGovernor(interval time.Duration) {
	if s.Governor != nil {
		s.Governor.Start(interval)
	}
}

// StopGovernor halts governor ticking; a no-op without a governor.
func (s *Session) StopGovernor() {
	if s.Governor != nil {
		s.Governor.Stop()
	}
}

// BudgetHealth reports where the context budget stands.
type BudgetHealth struct {
	// MaxContexts is the configured budget (0 = unbounded).
	MaxContexts int `json:"maxContexts"`
	// TableContexts is the number of interned allocation contexts.
	TableContexts int `json:"tableContexts"`
	// TableOverflowAdmissions counts captures redirected to the overflow
	// context because the table budget was exhausted.
	TableOverflowAdmissions int64 `json:"tableOverflowAdmissions"`
	// ProfilerContexts is the number of currently-tracked profiler contexts.
	ProfilerContexts int `json:"profilerContexts"`
	// Evictions counts profiler contexts folded into the overflow aggregate.
	Evictions int64 `json:"evictions"`
	// OverflowAllocs is the allocation traffic attributed to the overflow
	// context (denied admissions plus evicted contexts' history).
	OverflowAllocs int64 `json:"overflowAllocs"`
	// LiveInstances is the number of currently tracked live collections.
	LiveInstances int `json:"liveInstances"`
}

// Health is the session's overload-protection snapshot: the degradation-
// ladder position plus budget/eviction accounting (docs/ROBUSTNESS.md).
type Health struct {
	Tier     governor.Tier    `json:"tier"`
	Governor *governor.Health `json:"governor,omitempty"`
	Budget   BudgetHealth     `json:"budget"`
}

// Health snapshots the session's overload-protection state.
func (s *Session) Health() Health {
	h := Health{Tier: s.rt.ProfilingTier()}
	if s.Governor != nil {
		gh := s.Governor.Health()
		h.Governor = &gh
		h.Tier = gh.Tier
	}
	h.Budget.MaxContexts = s.maxContexts
	if s.Contexts != nil {
		h.Budget.TableContexts = s.Contexts.Len()
		h.Budget.TableOverflowAdmissions = s.Contexts.OverflowAdmissions()
	}
	if s.Prof != nil {
		h.Budget.ProfilerContexts = s.Prof.Contexts()
		h.Budget.Evictions = s.Prof.Evictions()
		h.Budget.LiveInstances = s.Prof.LiveInstances()
		if key := s.Prof.OverflowKey(); key != 0 {
			if p := s.Prof.SnapshotContext(key); p != nil {
				h.Budget.OverflowAllocs = p.Allocs
			}
		}
	}
	return h
}

// Report snapshots the profiler and applies the rule engine.
func (s *Session) Report(opts advisor.Options) (*advisor.Report, error) {
	if s.Prof == nil {
		return &advisor.Report{}, nil
	}
	return advisor.Advise(s.Prof.Snapshot(), opts)
}

// CyclePoint is one GC cycle of the Fig. 2 / Fig. 8 series: the share of
// total live data held by collections, split into live / used / core.
type CyclePoint struct {
	Cycle   int
	LivePct float64
	UsedPct float64
	CorePct float64
	// Absolute values, for the tables.
	LiveData    int64
	Collections heap.Footprint
}

// PotentialSeries converts the retained heap snapshots into the Fig. 2
// percentage series.
func (s *Session) PotentialSeries() []CyclePoint {
	snaps := s.Heap.Snapshots()
	out := make([]CyclePoint, 0, len(snaps))
	for _, c := range snaps {
		out = append(out, CyclePoint{
			Cycle:       c.Cycle,
			LivePct:     stats.Percent(float64(c.Collections.Live), float64(c.LiveData)),
			UsedPct:     stats.Percent(float64(c.Collections.Used), float64(c.LiveData)),
			CorePct:     stats.Percent(float64(c.Collections.Core), float64(c.LiveData)),
			LiveData:    c.LiveData,
			Collections: c.Collections,
		})
	}
	return out
}

// FinalGC forces a final collection cycle so end-of-run statistics are
// recorded even when the allocation volume since the last cycle is small.
func (s *Session) FinalGC() { s.Heap.GC() }
