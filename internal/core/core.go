// Package core assembles the Chameleon tool from its parts (paper Fig. 1):
// a Session wires the simulated collection-aware heap, the semantic
// profiler, allocation-context capture, the collections runtime and —
// optionally — the fully-automatic online selector, and exposes the two
// tool outputs: per-cycle potential series (Fig. 2 / Fig. 8) and the
// rule-engine suggestion report (§2.1, Fig. 3).
package core

import (
	"chameleon/internal/adaptive"
	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/stats"
)

// Config configures a Session.
type Config struct {
	// Mode selects allocation-context capture (default Static).
	Mode alloctx.Mode
	// Depth is the dynamic-capture partial-context depth (default 2).
	Depth int
	// SampleRate captures 1 in N dynamic contexts (<=1: all).
	SampleRate int
	// Model is the simulated object layout (default heap.Model32).
	Model heap.SizeModel
	// GCThreshold is the allocation volume between GC cycles (default 1 MiB).
	GCThreshold int64
	// KeepSnapshots retains per-cycle statistics for the Fig. 2 / Fig. 8
	// series (default true).
	DropSnapshots bool
	// KeepContexts additionally retains per-context data inside each kept
	// snapshot, enabling the §4.4 context-level time series.
	KeepContexts bool
	// Online enables the fully-automatic selector (§3.3.2).
	Online bool
	// OnlineOptions tune the online selector.
	OnlineOptions adaptive.Options
	// Selector installs a fixed selector (e.g. an advisor.Plan derived
	// from a previous run's report) when Online is false.
	Selector collections.Selector
	// NoProfiling turns trace profiling off entirely (heap simulation
	// still runs); used for baseline timing runs.
	NoProfiling bool
	// Limit, when positive, is a hard cap on simulated live bytes; an
	// allocation exceeding it panics with heap.OOMError (used by the
	// minimal-heap search).
	Limit int64
	// Generational selects the two-region collector (see heap.Config);
	// per-context statistics come from major cycles only and are
	// identical to the full collector's (§4.3.2).
	Generational bool
	// MinorPerMajor is the generational minor:major cadence (default 4).
	MinorPerMajor int
}

// Session is one profiled program run.
type Session struct {
	Heap     *heap.Heap
	Prof     *profiler.Profiler
	Contexts *alloctx.Table
	Selector *adaptive.Selector

	rt *collections.Runtime
}

// NewSession builds a fully wired session.
func NewSession(cfg Config) *Session {
	s := &Session{Contexts: alloctx.NewTable()}
	if cfg.Mode == 0 {
		cfg.Mode = alloctx.Static
	}
	var obs heap.Observer
	if !cfg.NoProfiling {
		s.Prof = profiler.New()
		obs = s.Prof
	}
	s.Heap = heap.New(heap.Config{
		Model:         cfg.Model,
		GCThreshold:   cfg.GCThreshold,
		Observer:      obs,
		KeepSnapshots: !cfg.DropSnapshots,
		KeepContexts:  cfg.KeepContexts,
		Generational:  cfg.Generational,
		MinorPerMajor: cfg.MinorPerMajor,
		Limit:         cfg.Limit,
	})
	sel := cfg.Selector
	if cfg.Online && s.Prof != nil {
		s.Selector = adaptive.New(s.Prof, cfg.OnlineOptions)
		sel = s.Selector
	}
	s.rt = collections.NewRuntime(collections.Config{
		Heap:       s.Heap,
		Profiler:   s.Prof,
		Contexts:   s.Contexts,
		Mode:       cfg.Mode,
		Depth:      cfg.Depth,
		SampleRate: cfg.SampleRate,
		Selector:   sel,
	})
	return s
}

// Runtime reports the collections runtime workloads allocate through.
func (s *Session) Runtime() *collections.Runtime { return s.rt }

// Report snapshots the profiler and applies the rule engine.
func (s *Session) Report(opts advisor.Options) (*advisor.Report, error) {
	if s.Prof == nil {
		return &advisor.Report{}, nil
	}
	return advisor.Advise(s.Prof.Snapshot(), opts)
}

// CyclePoint is one GC cycle of the Fig. 2 / Fig. 8 series: the share of
// total live data held by collections, split into live / used / core.
type CyclePoint struct {
	Cycle   int
	LivePct float64
	UsedPct float64
	CorePct float64
	// Absolute values, for the tables.
	LiveData    int64
	Collections heap.Footprint
}

// PotentialSeries converts the retained heap snapshots into the Fig. 2
// percentage series.
func (s *Session) PotentialSeries() []CyclePoint {
	snaps := s.Heap.Snapshots()
	out := make([]CyclePoint, 0, len(snaps))
	for _, c := range snaps {
		out = append(out, CyclePoint{
			Cycle:       c.Cycle,
			LivePct:     stats.Percent(float64(c.Collections.Live), float64(c.LiveData)),
			UsedPct:     stats.Percent(float64(c.Collections.Used), float64(c.LiveData)),
			CorePct:     stats.Percent(float64(c.Collections.Core), float64(c.LiveData)),
			LiveData:    c.LiveData,
			Collections: c.Collections,
		})
	}
	return out
}

// FinalGC forces a final collection cycle so end-of-run statistics are
// recorded even when the allocation volume since the last cycle is small.
func (s *Session) FinalGC() { s.Heap.GC() }
