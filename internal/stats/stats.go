// Package stats provides the streaming statistics used by the Chameleon
// semantic profiler: running mean/variance (Welford's algorithm), min/max
// tracking, and small histograms. All aggregates in paper Table 1
// ("Avg/Var operation count", "Avg/Var of maximal size") are computed with
// these types so that profiling never needs to retain per-instance samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates a stream of float64 observations and reports count,
// mean, variance and standard deviation in O(1) space. The zero value is an
// empty accumulator ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddN folds the same observation n times (used when aggregating a batch of
// identical samples, e.g. instances that never grew beyond size zero).
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge combines another accumulator into w using Chan et al.'s parallel
// update, so per-instance accumulators can be folded into the per-context
// accumulator when an instance dies (the paper's finalizer aggregation).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// FromMoments reconstructs an accumulator from its summary moments: the
// observation count, mean, population standard deviation, and the observed
// extrema. It is the inverse of (Count, Mean, StdDev, Min, Max), up to
// floating-point rounding of stddev², and exists so fleet-profile
// aggregation can rebuild each source's per-context accumulator from a
// serialized snapshot and combine sources through Merge — the same Chan et
// al. update the profiler uses — instead of averaging averages. n <= 0
// reports an empty accumulator.
func FromMoments(n int64, mean, stddev, min, max float64) Welford {
	if n <= 0 {
		return Welford{}
	}
	return Welford{n: n, mean: mean, m2: stddev * stddev * float64(n), min: min, max: max}
}

// Count reports the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean reports the arithmetic mean, or 0 for an empty accumulator.
func (w *Welford) Mean() float64 { return w.mean }

// Min reports the smallest observation, or 0 for an empty accumulator.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max reports the largest observation, or 0 for an empty accumulator.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Variance reports the population variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev reports the population standard deviation. This is the paper's
// stability measure (Definition 3.1): a metric is stable in a context when
// its standard deviation is below a per-metric threshold.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sum reports mean*count, the total of all observations.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// String formats the accumulator as "n=.. mean=.. sd=.. min=.. max=..".
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.0f max=%.0f",
		w.n, w.Mean(), w.StdDev(), w.Min(), w.Max())
}

// Histogram is a sparse integer histogram (value -> count). Chameleon uses
// it for collection-size distributions, which the paper notes are "often
// biased around a single value (e.g., 1), with a long tail" (§3.3.1).
type Histogram struct {
	counts map[int64]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int64]int64)}
}

// Add records one observation of v.
func (h *Histogram) Add(v int64) {
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	h.counts[v]++
	h.total++
}

// AddN records n observations of v in one update (the deserialization
// form of Add; n <= 0 is a no-op).
func (h *Histogram) AddN(v, n int64) {
	if n <= 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	h.counts[v] += n
	h.total += n
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	for v, c := range o.counts {
		h.counts[v] += c
	}
	h.total += o.total
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// CountOf reports how many times v was observed.
func (h *Histogram) CountOf(v int64) int64 { return h.counts[v] }

// Mode reports the most frequent value and its count; ties break toward the
// smaller value. An empty histogram reports (0, 0).
func (h *Histogram) Mode() (value, count int64) {
	first := true
	for v, c := range h.counts {
		if first || c > count || (c == count && v < value) {
			value, count = v, c
			first = false
		}
	}
	return value, count
}

// Quantile reports the smallest value v such that at least q (0..1) of the
// observations are <= v. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	values := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	need := int64(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var cum int64
	for _, v := range values {
		cum += h.counts[v]
		if cum >= need {
			return v
		}
	}
	return values[len(values)-1]
}

// Values reports the distinct observed values in ascending order.
func (h *Histogram) Values() []int64 {
	values := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	return values
}

// Fraction reports the fraction of observations equal to v.
func (h *Histogram) Fraction(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Ratio returns a/b, or 0 when b is 0. It is the guarded division used for
// operation-count ratios in rule conditions (e.g. #contains/#allOps).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Percent returns 100*part/whole, or 0 when whole is 0.
func Percent(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}
