package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatalf("empty accumulator not all-zero: %v", w.String())
	}
	if w.Min() != 0 || w.Max() != 0 {
		t.Fatalf("empty min/max not zero")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Count() != 1 {
		t.Fatalf("count = %d, want 1", w.Count())
	}
	if w.Mean() != 42 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("mean/min/max wrong: %s", w.String())
	}
	if w.Variance() != 0 {
		t.Fatalf("variance of one sample should be 0")
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := w.Variance(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("variance = %v, want 4", got)
	}
	if got := w.StdDev(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("stddev = %v, want 2", got)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
	if got := w.Sum(); !almostEqual(got, 40, 1e-12) {
		t.Errorf("sum = %v, want 40", got)
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	for i := 0; i < 5; i++ {
		a.Add(3)
	}
	b.AddN(3, 5)
	if a.Count() != b.Count() || !almostEqual(a.Mean(), b.Mean(), 1e-12) {
		t.Fatalf("AddN mismatch: %s vs %s", a.String(), b.String())
	}
}

// Property: merging two accumulators is equivalent to accumulating the
// concatenated stream.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := make([]float64, 0, len(in))
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Welford
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almostEqual(a.Mean(), all.Mean(), 1e-6) &&
			almostEqual(a.Variance(), all.Variance(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, empty Welford
	a.Add(1)
	a.Add(3)
	before := a.String()
	a.Merge(empty)
	if a.String() != before {
		t.Fatalf("merging empty changed accumulator: %s -> %s", before, a.String())
	}
	var c Welford
	c.Merge(a)
	if c.String() != a.String() {
		t.Fatalf("merge into empty lost data: %s vs %s", c.String(), a.String())
	}
}

// Property: stddev is shift-invariant (within fp tolerance) and count grows
// by one per Add.
func TestWelfordShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b Welford
	const shift = 1000.0
	for i := 0; i < 500; i++ {
		x := rng.Float64() * 50
		a.Add(x)
		b.Add(x + shift)
	}
	if !almostEqual(a.StdDev(), b.StdDev(), 1e-9) {
		t.Fatalf("stddev not shift invariant: %v vs %v", a.StdDev(), b.StdDev())
	}
	if !almostEqual(a.Mean()+shift, b.Mean(), 1e-9) {
		t.Fatalf("mean shift wrong: %v vs %v", a.Mean()+shift, b.Mean())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if v, c := h.Mode(); v != 0 || c != 0 {
		t.Fatalf("empty mode = (%d,%d), want (0,0)", v, c)
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile should be 0")
	}
	for _, v := range []int64{1, 1, 1, 2, 5, 5, 9} {
		h.Add(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if v, c := h.Mode(); v != 1 || c != 3 {
		t.Fatalf("mode = (%d,%d), want (1,3)", v, c)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("median = %d, want 2", got)
	}
	if got := h.Quantile(1.0); got != 9 {
		t.Fatalf("q1.0 = %d, want 9", got)
	}
	if got := h.Quantile(0.0); got != 1 {
		t.Fatalf("q0.0 = %d, want 1", got)
	}
	if got := h.Fraction(1); !almostEqual(got, 3.0/7.0, 1e-12) {
		t.Fatalf("fraction(1) = %v", got)
	}
	if got := h.Values(); len(got) != 4 || got[0] != 1 || got[3] != 9 {
		t.Fatalf("values = %v", got)
	}
}

func TestHistogramModeTieBreaksLow(t *testing.T) {
	h := NewHistogram()
	h.Add(7)
	h.Add(3)
	if v, _ := h.Mode(); v != 3 {
		t.Fatalf("tie should break toward smaller value, got %d", v)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(3)
	a.Merge(b)
	if a.Count() != 4 || a.CountOf(2) != 2 || a.CountOf(3) != 1 {
		t.Fatalf("merge wrong: count=%d", a.Count())
	}
	a.Merge(nil) // must not panic
	if a.Count() != 4 {
		t.Fatalf("merge(nil) changed count")
	}
}

// Property: quantile is monotone in q and always returns an observed value.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []int8, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		q1, q2 = math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		h := NewHistogram()
		seen := map[int64]bool{}
		for _, v := range raw {
			h.Add(int64(v))
			seen[int64(v)] = true
		}
		a, b := h.Quantile(q1), h.Quantile(q2)
		return a <= b && seen[a] && seen[b]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatalf("Ratio(_, 0) must be 0")
	}
	if Ratio(6, 3) != 2 {
		t.Fatalf("Ratio(6,3) = %v", Ratio(6, 3))
	}
	if Percent(1, 0) != 0 {
		t.Fatalf("Percent(_, 0) must be 0")
	}
	if Percent(25, 100) != 25 {
		t.Fatalf("Percent(25,100) = %v", Percent(25, 100))
	}
}

func TestWelfordMergeBranches(t *testing.T) {
	// o extends both extremes of w.
	var w, o Welford
	w.Add(5)
	w.Add(6)
	o.Add(1)
	o.Add(10)
	w.Merge(o)
	if w.Min() != 1 || w.Max() != 10 || w.Count() != 4 {
		t.Fatalf("merge extremes: %s", w.String())
	}
	// o inside w's range: extremes unchanged.
	var w2, o2 Welford
	w2.Add(0)
	w2.Add(100)
	o2.Add(50)
	w2.Merge(o2)
	if w2.Min() != 0 || w2.Max() != 100 {
		t.Fatalf("merge interior changed extremes: %s", w2.String())
	}
}

func TestHistogramZeroValueAndEdges(t *testing.T) {
	var h Histogram // zero value, counts map nil
	h.Add(3)        // must allocate lazily
	if h.Count() != 1 || h.CountOf(3) != 1 {
		t.Fatalf("zero-value histogram broken")
	}
	var h2 Histogram
	h2.Merge(&h) // merge into zero value
	if h2.CountOf(3) != 1 {
		t.Fatalf("merge into zero value broken")
	}
	if h2.Fraction(99) != 0 {
		t.Fatalf("fraction of absent value")
	}
	var empty Histogram
	if empty.Fraction(1) != 0 {
		t.Fatalf("fraction on empty")
	}
	// Quantile clamping.
	if h.Quantile(-0.5) != 3 || h.Quantile(2.0) != 3 {
		t.Fatalf("quantile clamping broken")
	}
}

func TestFromMomentsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var w Welford
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			w.Add(rng.Float64() * 100)
		}
		r := FromMoments(w.Count(), w.Mean(), w.StdDev(), w.Min(), w.Max())
		if r.Count() != w.Count() || r.Min() != w.Min() || r.Max() != w.Max() {
			t.Fatalf("count/min/max changed: %s vs %s", r.String(), w.String())
		}
		if !almostEqual(r.Mean(), w.Mean(), 1e-12) || !almostEqual(r.Variance(), w.Variance(), 1e-9) {
			t.Fatalf("moments changed: %s vs %s", r.String(), w.String())
		}
	}
}

func TestFromMomentsEmpty(t *testing.T) {
	r := FromMoments(0, 5, 2, 1, 9)
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatalf("n<=0 should report an empty accumulator, got %s", r.String())
	}
}

// TestFromMomentsMergeMatchesPooled is the property fleet aggregation
// relies on: rebuilding two sources from their serialized moments and
// merging them must equal pooling the raw observations.
func TestFromMomentsMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	err := quick.Check(func(na, nb uint8) bool {
		var a, b, pooled Welford
		for i := 0; i < int(na)+1; i++ {
			x := rng.Float64() * 50
			a.Add(x)
			pooled.Add(x)
		}
		for i := 0; i < int(nb)+1; i++ {
			x := 30 + rng.Float64()*50
			b.Add(x)
			pooled.Add(x)
		}
		m := FromMoments(a.Count(), a.Mean(), a.StdDev(), a.Min(), a.Max())
		m.Merge(FromMoments(b.Count(), b.Mean(), b.StdDev(), b.Min(), b.Max()))
		return m.Count() == pooled.Count() &&
			almostEqual(m.Mean(), pooled.Mean(), 1e-9) &&
			almostEqual(m.Variance(), pooled.Variance(), 1e-6) &&
			m.Min() == pooled.Min() && m.Max() == pooled.Max()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
