package apply

import (
	"errors"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/alloctx"
	"chameleon/internal/analysis"
	"chameleon/internal/collections"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/spec"
	"chameleon/internal/workloads"
)

// The apply tests drive the real pipeline end to end: profile a workload
// in process, run the analysis + advisor + rewriter over the actual
// repository tree, and assert on the classification and the rewritten
// bytes. Nothing is written to disk.

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// profileWorkload runs one workload baseline under a fully profiled
// static-mode runtime and returns the snapshot — the same artifact
// `chameleon -profile-out` writes.
func profileWorkload(t *testing.T, name string, scale int) []*profiler.Profile {
	t.Helper()
	sp, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New()
	h := heap.New(heap.Config{GCThreshold: 1 << 30, Observer: prof, KeepSnapshots: true, KeepContexts: true})
	rt := collections.NewRuntime(collections.Config{
		Heap:     h,
		Profiler: prof,
		Contexts: alloctx.NewTable(),
		Mode:     alloctx.Static,
	})
	sp.Run(rt, workloads.Baseline, scale)
	return prof.Snapshot()
}

func runApply(t *testing.T, profiles []*profiler.Profile) *Result {
	t.Helper()
	res, err := Run(Options{
		Dir:          repoRoot(t),
		Patterns:     []string{"./internal/workloads"},
		Profiles:     profiles,
		MinPotential: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// decisionsByLabel collects the classifications of every site carrying
// the given static label (variant arms share one label).
func decisionsByLabel(res *Result, label string) []SiteDecision {
	var out []SiteDecision
	for _, d := range res.Sites {
		if d.Site.Label == label {
			out = append(out, d)
		}
	}
	return out
}

const (
	pmdViolationsLabel = "net.sourceforge.pmd.RuleContext:74;net.sourceforge.pmd.ast.SimpleNode:152"
	pmdRuleSetLabel    = "net.sourceforge.pmd.RuleSetFactory:41;net.sourceforge.pmd.PMD:102"
	stableLabel        = "phase.Counter.bump:12;phase.Server.handle:29"
	shiftMapLabel      = "phase.Cache.lookup:42;phase.Server.handle:17"
)

func TestApplyPMDReplacesViolationsSite(t *testing.T) {
	res := runApply(t, profileWorkload(t, "pmd", 30))
	if len(res.Stale) != 0 {
		t.Fatalf("unexpected stale contexts: %v", res.Stale)
	}

	// The violations label covers three arms of one switch: the baseline
	// arm (no Impl) must be rewritten to the lazy fixed constructor; the
	// two tuned arms are programmer-pinned and must be skipped.
	var replaced, forced int
	for _, d := range decisionsByLabel(res, pmdViolationsLabel) {
		switch {
		case d.Site.Forced == "":
			if d.Status != StatusReplace || d.Constructor != "NewFixedLazyArrayList" {
				t.Fatalf("baseline violations arm: %s %q (%s)", d.Status, d.Constructor, d.Reason)
			}
			if d.Capacity != 0 {
				t.Fatalf("lazy replacement must keep the site's Cap, got capacity %d", d.Capacity)
			}
			replaced++
		default:
			if d.Status != StatusSkipForced {
				t.Fatalf("tuned arm (Impl %s): %s, want %s", d.Site.Forced, d.Status, StatusSkipForced)
			}
			forced++
		}
	}
	if replaced != 1 || forced != 2 {
		t.Fatalf("violations arms: %d replaced, %d forced (want 1 and 2)", replaced, forced)
	}

	// The long-lived rule sets escape into a slice: refuted, untouched.
	for _, d := range decisionsByLabel(res, pmdRuleSetLabel) {
		if d.Status != StatusSkipUnsafe {
			t.Fatalf("escaping rule-set site: %s (%s), want %s", d.Status, d.Reason, StatusSkipUnsafe)
		}
	}

	if len(res.Files) != 1 || !strings.HasSuffix(res.Files[0].Path, "pmd.go") {
		t.Fatalf("rewritten files = %v, want exactly pmd.go", paths(res.Files))
	}
	out := string(res.Files[0].Rewritten)
	if !strings.Contains(out, "collections.NewFixedLazyArrayList[int](rt, pmdViolationsCtx(),") {
		t.Fatalf("rewritten pmd.go lacks the fixed constructor:\n%s", out)
	}
	if !strings.Contains(out, "collections.Cap(pmdOversizedCap)") {
		t.Fatalf("rewrite dropped the original Cap argument")
	}
	// Exactly one new occurrence of the fixed constructor (the source
	// already carries one in the hand-specialized variant arm).
	delta := strings.Count(out, "NewFixedLazyArrayList") - strings.Count(string(res.Files[0].Original), "NewFixedLazyArrayList")
	if delta != 1 {
		t.Fatalf("fixed constructor written %d times, want 1", delta)
	}
	assertGofmtStable(t, res.Files[0])
}

func TestApplyPhaseShiftOnlyStableContextDecided(t *testing.T) {
	res := runApply(t, profileWorkload(t, "phaseshift", 50))
	if len(res.Stale) != 0 {
		t.Fatalf("unexpected stale contexts: %v", res.Stale)
	}

	// The stable context (always exactly one entry, zero size variance)
	// is decided: HashMap with maxSize 1 -> ArrayMap(1).
	for _, d := range decisionsByLabel(res, stableLabel) {
		if d.Status != StatusReplace || d.Constructor != "NewFixedArrayMap" {
			t.Fatalf("stable context: %s %q (%s)", d.Status, d.Constructor, d.Reason)
		}
		if d.Capacity != 1 {
			t.Fatalf("stable context capacity = %d, want 1", d.Capacity)
		}
	}

	// The shifting contexts have a huge size standard deviation; the
	// Definition 3.1 stability gate must leave them undecided — exactly
	// the sites an ahead-of-time rewrite must not touch.
	for _, d := range decisionsByLabel(res, shiftMapLabel) {
		if d.Status != StatusSkipUndecided {
			t.Fatalf("shifting context: %s (%s), want %s", d.Status, d.Reason, StatusSkipUndecided)
		}
	}

	if len(res.Files) != 1 || !strings.HasSuffix(res.Files[0].Path, "phaseshift.go") {
		t.Fatalf("rewritten files = %v, want exactly phaseshift.go", paths(res.Files))
	}
	out := string(res.Files[0].Rewritten)
	// The site has no Cap argument; the decided capacity is appended.
	if !strings.Contains(out, "collections.NewFixedArrayMap[int, int](rt, stableCtx(), collections.Cap(1))") {
		t.Fatalf("rewritten phaseshift.go lacks the sized fixed constructor:\n%s", out)
	}
	assertGofmtStable(t, res.Files[0])
}

func TestStaleSnapshotContextsDetected(t *testing.T) {
	// A snapshot whose static labels were interned against a different
	// tree: every decided context joins no discovered site.
	tab := alloctx.NewTable()
	prof := profiler.New()
	ctx := tab.Static("gone.Package.fn:10;gone.Main.run:20")
	for i := 0; i < 4; i++ {
		in := prof.OnAlloc(ctx, spec.KindHashMap, spec.KindHashMap, 16)
		for j := 0; j < 4; j++ {
			in.Record(spec.Put)
			in.NoteSize(j + 1)
		}
		prof.OnDeath(in)
	}

	res := runApply(t, prof.Snapshot())
	if len(res.Stale) != 1 || res.Stale[0] != "gone.Package.fn:10;gone.Main.run:20" {
		t.Fatalf("stale = %v, want the foreign context", res.Stale)
	}
	if len(res.Files) != 0 {
		t.Fatalf("a fully stale snapshot still rewrote %v", paths(res.Files))
	}
}

func TestManifestGate(t *testing.T) {
	root := repoRoot(t)
	ares, err := analysis.Analyze(root, []string{"./internal/workloads"}, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	manifest := ares.Manifest()
	profiles := profileWorkload(t, "pmd", 20)

	// A matching manifest passes.
	if _, err := Run(Options{Dir: root, Patterns: []string{"./internal/workloads"}, Profiles: profiles, MinPotential: -1, Manifest: manifest}); err != nil {
		t.Fatalf("matching manifest rejected: %v", err)
	}

	// Tampering with the rewritten site's identity must be caught.
	tampered := *manifest
	tampered.Sites = append([]analysis.Site(nil), manifest.Sites...)
	found := false
	for i := range tampered.Sites {
		s := &tampered.Sites[i]
		if s.Label == pmdViolationsLabel && s.Forced == "" {
			s.ContextKey++
			found = true
		}
	}
	if !found {
		t.Fatal("violations site not in manifest")
	}
	_, err = Run(Options{Dir: root, Patterns: []string{"./internal/workloads"}, Profiles: profiles, MinPotential: -1, Manifest: &tampered})
	var mm *ManifestMismatchError
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered manifest accepted: %v", err)
	}
	if !errors.As(err, &mm) {
		t.Fatalf("manifest divergence is not a ManifestMismatchError: %T", err)
	}
}

func TestDiffRendersRewrite(t *testing.T) {
	res := runApply(t, profileWorkload(t, "pmd", 20))
	d := Diff(repoRoot(t), res.Files)
	for _, want := range []string{
		"--- a/internal/workloads/pmd.go",
		"+++ b/internal/workloads/pmd.go",
		"-\t\t\tviolations = collections.NewArrayList[int](rt, pmdViolationsCtx(),",
		"+\t\t\tviolations = collections.NewFixedLazyArrayList[int](rt, pmdViolationsCtx(),",
	} {
		if !strings.Contains(d, want) {
			t.Fatalf("diff lacks %q:\n%s", want, d)
		}
	}
}

func TestApplyEditsSpliceAndReject(t *testing.T) {
	src := []byte("abcdef")
	out, err := applyEdits(src, []edit{{1, 3, "XY"}, {4, 4, "_"}})
	if err != nil || string(out) != "aXYd_ef" {
		t.Fatalf("applyEdits = %q, %v", out, err)
	}
	if _, err := applyEdits(src, []edit{{1, 4, "x"}, {3, 5, "y"}}); err == nil {
		t.Fatal("overlapping edits accepted")
	}
	if string(src) != "abcdef" {
		t.Fatal("applyEdits mutated its input")
	}
}

func assertGofmtStable(t *testing.T, f FileRewrite) {
	t.Helper()
	again, err := format.Source(f.Rewritten)
	if err != nil {
		t.Fatalf("rewritten %s does not parse: %v", f.Path, err)
	}
	if string(again) != string(f.Rewritten) {
		t.Fatalf("rewritten %s is not gofmt-stable", f.Path)
	}
}

func paths(files []FileRewrite) []string {
	var out []string
	for _, f := range files {
		out = append(out, f.Path)
	}
	return out
}
