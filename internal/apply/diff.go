package apply

import (
	"fmt"
	"path/filepath"
	"strings"
)

// Unified diffs, dependency-free. Rewrites touch a handful of lines per
// file, so the implementation trims the common prefix and suffix first
// and runs the quadratic LCS only over the small changed middle.

// Diff renders a unified diff of the rewrite, paths made relative to
// root (for golden-file stability across checkouts). Empty when the
// rewrite changed nothing.
func Diff(root string, files []FileRewrite) string {
	// Site paths are absolute; a relative root (the CLI's default ".")
	// cannot anchor filepath.Rel against them.
	if abs, err := filepath.Abs(root); err == nil {
		root = abs
	}
	var b strings.Builder
	for _, f := range files {
		if string(f.Original) == string(f.Rewritten) {
			continue
		}
		rel := f.Path
		if r, err := filepath.Rel(root, f.Path); err == nil {
			rel = filepath.ToSlash(r)
		}
		b.WriteString(unified(rel, splitLines(string(f.Original)), splitLines(string(f.Rewritten))))
	}
	return b.String()
}

// splitLines splits keeping each line's trailing newline, so a missing
// final newline stays visible in the diff.
func splitLines(s string) []string {
	var lines []string
	for len(s) > 0 {
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			lines = append(lines, s)
			break
		}
		lines = append(lines, s[:i+1])
		s = s[i+1:]
	}
	return lines
}

// unified renders one file's unified diff with 3 lines of context.
func unified(rel string, a, b []string) string {
	const ctx = 3
	ops := diffOps(a, b)
	var out strings.Builder
	fmt.Fprintf(&out, "--- a/%s\n+++ b/%s\n", rel, rel)

	// Group ops into hunks: runs of changes with <= 2*ctx equal lines
	// between them.
	for i := 0; i < len(ops); {
		// Find the next change.
		for i < len(ops) && ops[i].kind == opEq {
			i++
		}
		if i == len(ops) {
			break
		}
		start := i
		end := i
		for j := i; j < len(ops); {
			if ops[j].kind != opEq {
				end = j + 1
				j++
				continue
			}
			// Count the equal run; stop the hunk if it exceeds 2*ctx.
			run := 0
			for j+run < len(ops) && ops[j+run].kind == opEq {
				run++
			}
			if run > 2*ctx || j+run == len(ops) {
				break
			}
			j += run
			end = j
		}
		hs := start - ctx
		if hs < 0 {
			hs = 0
		}
		he := end + ctx
		if he > len(ops) {
			he = len(ops)
		}
		writeHunk(&out, ops[hs:he])
		i = he
	}
	return out.String()
}

type opKind int

const (
	opEq opKind = iota
	opDel
	opAdd
)

type diffOp struct {
	kind opKind
	text string
	// aLine/bLine are 1-based line numbers in a and b (0 when absent).
	aLine, bLine int
}

func writeHunk(out *strings.Builder, ops []diffOp) {
	aStart, bStart := 0, 0
	aCount, bCount := 0, 0
	for _, op := range ops {
		switch op.kind {
		case opEq:
			if aStart == 0 {
				aStart, bStart = op.aLine, op.bLine
			}
			aCount++
			bCount++
		case opDel:
			if aStart == 0 {
				aStart, bStart = op.aLine, op.bLine+1
			}
			aCount++
		case opAdd:
			if aStart == 0 {
				aStart, bStart = op.aLine+1, op.bLine
			}
			bCount++
		}
	}
	fmt.Fprintf(out, "@@ -%d,%d +%d,%d @@\n", aStart, aCount, bStart, bCount)
	for _, op := range ops {
		marker := " "
		if op.kind == opDel {
			marker = "-"
		} else if op.kind == opAdd {
			marker = "+"
		}
		text := op.text
		newline := strings.HasSuffix(text, "\n")
		if newline {
			text = text[:len(text)-1]
		}
		out.WriteString(marker)
		out.WriteString(text)
		out.WriteByte('\n')
		if !newline {
			out.WriteString("\\ No newline at end of file\n")
		}
	}
}

// diffOps computes the line-level edit script. Common prefix/suffix are
// peeled off before the LCS so the quadratic table only covers the
// changed region.
func diffOps(a, b []string) []diffOp {
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	am, bm := a[pre:len(a)-suf], b[pre:len(b)-suf]

	// LCS table over the middle.
	n, m := len(am), len(bm)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if am[i] == bm[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	var ops []diffOp
	aLine, bLine := 0, 0
	emit := func(kind opKind, text string) {
		op := diffOp{kind: kind, text: text}
		switch kind {
		case opEq:
			aLine++
			bLine++
			op.aLine, op.bLine = aLine, bLine
		case opDel:
			aLine++
			op.aLine, op.bLine = aLine, bLine
		case opAdd:
			bLine++
			op.aLine, op.bLine = aLine, bLine
		}
		ops = append(ops, op)
	}
	for i := 0; i < pre; i++ {
		emit(opEq, a[i])
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case am[i] == bm[j]:
			emit(opEq, am[i])
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			emit(opDel, am[i])
			i++
		default:
			emit(opAdd, bm[j])
			j++
		}
	}
	for ; i < n; i++ {
		emit(opDel, am[i])
	}
	for ; j < m; j++ {
		emit(opAdd, bm[j])
	}
	for k := len(a) - suf; k < len(a); k++ {
		emit(opEq, a[k])
	}
	return ops
}
