package apply

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The verify tests are the expensive end of the suite: each one clones
// the module, overlays the rewrite, and builds + runs the clone's
// chameleon binary. Small scales keep the runs fast; the build cache
// keeps the clone builds incremental.

func TestVerifyPMDRewriteMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a module clone")
	}
	res := runApply(t, profileWorkload(t, "pmd", 20))
	if len(res.Files) == 0 {
		t.Fatal("no rewrite to verify")
	}
	v, err := Verify(repoRoot(t), res.Files, "pmd", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("rewritten pmd tree diverges: %s", v)
	}
}

func TestVerifyPhaseShiftRewriteMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a module clone")
	}
	res := runApply(t, profileWorkload(t, "phaseshift", 50))
	if len(res.Files) == 0 {
		t.Fatal("no rewrite to verify")
	}
	v, err := Verify(repoRoot(t), res.Files, "phaseshift", 20)
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK() {
		t.Fatalf("rewritten phaseshift tree diverges: %s", v)
	}
}

// Verify must actually detect divergence, not merely rubber-stamp: a
// fabricated "rewrite" that changes the workload's PRNG seed changes the
// operation stream, and the checksums must disagree.
func TestVerifyDetectsBehaviorChange(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a module clone")
	}
	root := repoRoot(t)
	path := filepath.Join(root, "internal", "workloads", "pmd.go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(src, []byte("newRand(555)"), []byte("newRand(556)"), 1)
	if bytes.Equal(bad, src) {
		t.Fatal("seed not found; update the fixture")
	}
	v, err := Verify(root, []FileRewrite{{Path: path, Original: src, Rewritten: bad}}, "pmd", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK() {
		t.Fatalf("behavior change not detected: %s", v)
	}
}
