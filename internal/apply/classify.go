package apply

import (
	"fmt"

	"chameleon/internal/advisor"
	"chameleon/internal/analysis"
	"chameleon/internal/collections"
	"chameleon/internal/rules"
	"chameleon/internal/spec"
)

// Status is a site's rewrite verdict. The two rewrite statuses come
// first; everything else is a skip with the deciding reason baked into
// the value, so a listing is self-explanatory without a legend.
type Status string

const (
	// StatusReplace: the decision replaces the implementation; the call
	// moves to the concrete NewFixed* constructor and stops profiling.
	StatusReplace Status = "replace"
	// StatusRetune: a capacity-only decision; the call keeps its
	// profiled constructor with an updated Cap.
	StatusRetune Status = "retune"

	// StatusSkipLibrary: the site is inside the collections library or
	// the root re-export package, not client code.
	StatusSkipLibrary Status = "skip:library"
	// StatusSkipUnsafe: the safety analysis refuted specialization
	// (escape, identity, or assertion hazard — S001..S005).
	StatusSkipUnsafe Status = "skip:unsafe"
	// StatusSkipInherited: the site's kind is taken from a source
	// collection at run time (NewListFrom); there is no static decision
	// to apply.
	StatusSkipInherited Status = "skip:inherited"
	// StatusSkipForced: the site carries an Impl(...) override — the
	// programmer already pinned the implementation (the tuned-variant
	// idiom); apply defers to them.
	StatusSkipForced Status = "skip:forced"
	// StatusSkipOpaque: an option argument was not statically
	// resolvable, so the rewrite could drop or contradict it.
	StatusSkipOpaque Status = "skip:opaque-options"
	// StatusSkipDynamic: the site has no constant At label; its runtime
	// context key is a PC hash that cannot be joined statically.
	StatusSkipDynamic Status = "skip:dynamic-label"
	// StatusSkipUndecided: the snapshot produced no actionable decision
	// for the site's context.
	StatusSkipUndecided Status = "skip:undecided"
	// StatusSkipCrossADT: the decision's implementation belongs to a
	// different abstract type than the site allocates (defensive; the
	// plan compiler already rejects these).
	StatusSkipCrossADT Status = "skip:cross-adt"
	// StatusSkipSized: the decided capacity equals what the site
	// already declares; rewriting would be a no-op.
	StatusSkipSized Status = "skip:already-sized"
	// StatusSkipNoFixed: no fixed constructor exists for the decided
	// implementation (abstract kinds).
	StatusSkipNoFixed Status = "skip:no-fixed-constructor"
	// StatusSkipIntArray: the decision would move an int-specialized
	// site onto a generic implementation, or a generic site onto the
	// unboxed int array; both need a type-level judgment apply does not
	// make.
	StatusSkipIntArray Status = "skip:int-array"
)

// Rewrites reports whether the status rewrites source.
func (s Status) Rewrites() bool { return s == StatusReplace || s == StatusRetune }

// SiteDecision is one site's classification: the manifest record, the
// joined plan entry when one exists, and what (if anything) to rewrite.
type SiteDecision struct {
	// Site is the manifest record (authoritative for findings/safety).
	Site analysis.Site
	// Info is the discovery-time syntax record (nil only if the
	// driver's ID join failed, which classify treats as undecided).
	Info *analysis.SiteInfo
	// Status is the verdict.
	Status Status
	// Reason elaborates the verdict for human listings.
	Reason string
	// Decided reports whether a plan entry joined the site; Entry is
	// that entry when it did.
	Decided bool
	Entry   advisor.PlanEntry
	// Constructor is the replacement constructor name (StatusReplace).
	Constructor string
	// Capacity is the capacity to write; 0 keeps the site's Cap as-is.
	Capacity int
}

// classify joins one discovered site against the plan and decides what
// to do with it. The order of checks is from cheapest-to-explain
// outward: structural exclusions first, then safety, then the join,
// then decision-specific vetoes.
func classify(site analysis.Site, info *analysis.SiteInfo, plan *advisor.Plan) SiteDecision {
	d := SiteDecision{Site: site, Info: info}

	if analysis.IsLibraryPackage(site.Pkg) {
		d.Status, d.Reason = StatusSkipLibrary, "allocation inside the collections library"
		return d
	}
	if site.Inherited {
		d.Status, d.Reason = StatusSkipInherited, "kind inherited from the source collection at run time"
		return d
	}
	if !site.Safe {
		d.Status, d.Reason = StatusSkipUnsafe, unsafeReason(site)
		return d
	}
	if site.Forced != "" {
		d.Status, d.Reason = StatusSkipForced, "implementation pinned with Impl("+site.Forced+")"
		return d
	}
	if site.OpaqueOptions {
		d.Status, d.Reason = StatusSkipOpaque, "option arguments not statically resolvable"
		return d
	}
	if site.LabelKind != analysis.LabelStatic || site.ContextKey == 0 {
		d.Status, d.Reason = StatusSkipDynamic, "no constant At label; runtime context key is not statically derivable"
		return d
	}

	entry, ok := plan.Entry(site.ContextKey)
	if !ok || info == nil {
		d.Status, d.Reason = StatusSkipUndecided, "snapshot holds no actionable decision for this context"
		return d
	}
	d.Decided, d.Entry = true, entry

	declared := analysis.EffectiveKind(&d.Site)
	impl := entry.Decision.Impl
	if impl.Abstract() != declared.Abstract() {
		d.Status = StatusSkipCrossADT
		d.Reason = fmt.Sprintf("decision %v crosses the ADT boundary from %v", impl, declared)
		return d
	}
	// Residual Impl args on a site with no resolved Forced kind means
	// resolution and syntax disagree; do not touch it.
	if len(info.ImplArgs) > 0 {
		d.Status, d.Reason = StatusSkipOpaque, "Impl argument present but unresolved"
		return d
	}

	switch entry.Action {
	case rules.ActSetCapacity:
		if site.Capacity == entry.Decision.Capacity {
			d.Status = StatusSkipSized
			d.Reason = fmt.Sprintf("site already declares Cap(%d)", site.Capacity)
			return d
		}
		d.Status = StatusRetune
		d.Capacity = entry.Decision.Capacity
		d.Reason = fmt.Sprintf("set initial capacity to %d", d.Capacity)
		return d

	case rules.ActReplace:
		// The unboxed int array is element-type-specific in both
		// directions: a generic site cannot move onto it, and an
		// IntArray site stays pinned (its constructor already is the
		// decision).
		if (declared == spec.KindIntArray) != (impl == spec.KindIntArray) {
			d.Status = StatusSkipIntArray
			d.Reason = fmt.Sprintf("replacement %v and declared %v disagree on int specialization", impl, declared)
			return d
		}
		name, ok := collections.FixedConstructorName(impl)
		if !ok {
			d.Status = StatusSkipNoFixed
			d.Reason = fmt.Sprintf("no fixed constructor for %v", impl)
			return d
		}
		d.Status = StatusReplace
		d.Constructor = name
		d.Capacity = entry.Decision.Capacity // 0 keeps the site's Cap
		d.Reason = fmt.Sprintf("replace %s with %s", site.Constructor, name)
		if d.Capacity > 0 {
			d.Reason += fmt.Sprintf(" (initial capacity %d)", d.Capacity)
		}
		return d
	}

	d.Status, d.Reason = StatusSkipUndecided, "decision action is advisory only"
	return d
}

// unsafeReason summarizes why the safety analysis refuted the site, from
// its recorded findings.
func unsafeReason(site analysis.Site) string {
	for _, f := range site.Findings {
		if f.Severity >= analysis.SevWarning {
			return f.Code + ": " + f.Message
		}
	}
	return "refuted by safety analysis"
}
