// Package apply is the ahead-of-time half of the Chameleon workflow: it
// takes what the runtime learned — a v2 decision/profile snapshot — and
// burns the settled decisions into source, so the next build pays neither
// the profiling tax nor the selection machinery for sites whose answer is
// already known (§3.3.2: the suggested implementations "can then be
// applied by the programmer (or by the tool)").
//
// The pipeline (docs/SPECIALIZE.md):
//
//	profile  — run the program with profiling; write a snapshot
//	sites    — chameleon-sites discovers allocation sites and proves or
//	           refutes each site's specialization safety
//	apply    — this package: join decisions to safe sites, rewrite
//	fixed    — the rewritten tree allocates through the NewFixed*
//	           constructors (internal/collections/fixed.go)
//
// A site is rewritten only when every link of that chain holds: the site
// is statically labeled (its context key is derivable), the safety
// analysis proved no escape or identity hazard, the options are fully
// resolvable, and the advisor compiled an actionable decision for its
// context. Everything else is left untouched and reported with the
// reason — apply is conservative by construction, because a wrong
// rewrite is a silent behavior change while a skipped one merely keeps
// paying the wrapper cost.
//
// Two rewrite shapes exist. A fully decided replacement moves the call
// to the concrete fixed constructor (NewArrayList -> NewFixedLazyArrayList),
// which skips profiling entirely. A capacity-only decision keeps the
// profiled constructor and only updates Cap, so the site keeps feeding
// future snapshots while allocating right-sized from the start.
package apply

import (
	"fmt"
	"sort"

	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/analysis"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
)

// Options configures one apply run.
type Options struct {
	// Dir is the directory package patterns resolve in.
	Dir string
	// Patterns are the package patterns to analyze; default "./...".
	Patterns []string
	// Profiles is the decision/profile snapshot the decisions come from.
	Profiles []*profiler.Profile
	// Rules is the rule set the advisor evaluates; nil selects builtin.
	Rules *rules.RuleSet
	// MinPotential is the advisor's negligible-saving gate. Apply
	// defaults it to -1 (disabled): a source rewrite is motivated by
	// time and churn as much as by live bytes, so the snapshot's
	// space-potential ranking should not veto it. Zero selects the
	// advisor default (512); positive values gate as usual.
	MinPotential int64
	// Manifest, when non-nil, is a previously written chameleon-sites
	// manifest acting as a consistency gate: every site apply wants to
	// rewrite must appear in it with the same identity, context key and
	// safety verdict, or the manifest is stale relative to the tree.
	Manifest *analysis.Manifest
}

// Result is everything one apply run computed.
type Result struct {
	// Module is the module path of the analyzed tree.
	Module string
	// Sites is the per-site classification, in source order. Every
	// discovered site appears exactly once, rewritten or not.
	Sites []SiteDecision
	// Files are the rewritten files (only files with at least one
	// rewrite), gofmt-formatted, in path order.
	Files []FileRewrite
	// Stale are the decided snapshot contexts that join no discovered
	// allocation site: evidence the snapshot was taken against a
	// different tree (or the analysis covered fewer packages than the
	// profiled run).
	Stale []string
	// Plan is the compiled decision plan, for reporting.
	Plan *advisor.Plan
}

// FileRewrite is one rewritten file: the original bytes and the
// formatted result of applying every edit.
type FileRewrite struct {
	// Path is the absolute file path.
	Path string
	// Original and Rewritten are the before/after contents.
	Original  []byte
	Rewritten []byte
}

// Replaced and Retuned count the rewrite decisions; Skipped the rest.
func (r *Result) Replaced() int { return r.count(StatusReplace) }

// Retuned counts capacity-only rewrites.
func (r *Result) Retuned() int { return r.count(StatusRetune) }

// Skipped counts sites left untouched.
func (r *Result) Skipped() int { return len(r.Sites) - r.Replaced() - r.Retuned() }

func (r *Result) count(st Status) int {
	n := 0
	for _, d := range r.Sites {
		if d.Status == st {
			n++
		}
	}
	return n
}

// Run analyzes the tree, compiles the snapshot into a plan, classifies
// every discovered site, and computes the rewritten files. Nothing is
// written to disk — the caller decides what to do with Result.Files
// (diff, write, verify in a scratch clone).
func Run(opts Options) (*Result, error) {
	res, err := analysis.Analyze(opts.Dir, opts.Patterns, analysis.Options{})
	if err != nil {
		return nil, err
	}

	rep, err := advisor.Advise(opts.Profiles, advisor.Options{
		Rules:        opts.Rules,
		MinPotential: opts.MinPotential,
	})
	if err != nil {
		return nil, fmt.Errorf("advisor: %v", err)
	}
	plan := advisor.NewPlan(rep)

	out := &Result{Module: res.Module, Plan: plan}
	for _, site := range res.Sites {
		d := classify(site, res.Infos[site.ID], plan)
		out.Sites = append(out.Sites, d)
	}
	out.Stale = staleContexts(res.Sites, plan)

	if opts.Manifest != nil {
		if err := checkManifest(opts.Manifest, out.Sites); err != nil {
			return nil, err
		}
	}

	files, err := rewriteFiles(out.Sites)
	if err != nil {
		return nil, err
	}
	out.Files = files
	return out, nil
}

// staleContexts reports the plan's decided contexts that join no
// discovered site — by exact context key, by label, or by first frame
// (the same join ladder as the S011 cross-check: dynamic captures can
// only join on their innermost frame).
func staleContexts(sites []analysis.Site, plan *advisor.Plan) []string {
	keys := map[uint64]bool{}
	labels := map[string]bool{}
	firstFrames := map[string]bool{}
	for i := range sites {
		s := &sites[i]
		if s.ContextKey != 0 {
			keys[s.ContextKey] = true
		}
		if s.Label != "" {
			labels[s.Label] = true
			firstFrames[alloctx.FirstFrame(s.Label)] = true
		}
	}
	var stale []string
	for _, e := range plan.Entries() {
		if e.Context == alloctx.OverflowLabel || e.Context == "<none>" {
			continue
		}
		if keys[e.ContextKey] || labels[e.Context] || firstFrames[alloctx.FirstFrame(e.Context)] {
			continue
		}
		stale = append(stale, e.Context)
	}
	sort.Strings(stale)
	return stale
}

// ManifestMismatchError reports that the consistency-gate manifest no
// longer describes the analyzed tree. Callers dispatch on it to report
// bad input rather than a runtime failure.
type ManifestMismatchError struct{ msg string }

func (e *ManifestMismatchError) Error() string { return e.msg }

// checkManifest gates the rewrite set against a previously written site
// manifest: a site apply wants to rewrite that is missing from the
// manifest, or whose identity diverged (context key, safety verdict),
// means the manifest no longer describes this tree.
func checkManifest(m *analysis.Manifest, decisions []SiteDecision) error {
	byID := make(map[string]*analysis.Site, len(m.Sites))
	for i := range m.Sites {
		byID[m.Sites[i].ID] = &m.Sites[i]
	}
	for i := range decisions {
		d := &decisions[i]
		if !d.Status.Rewrites() {
			continue
		}
		ms, ok := byID[d.Site.ID]
		if !ok {
			return &ManifestMismatchError{fmt.Sprintf("manifest: site %s not present; the manifest is stale relative to this tree (regenerate with chameleon-sites)", d.Site.ID)}
		}
		if ms.ContextKey != d.Site.ContextKey || ms.Safe != d.Site.Safe {
			return &ManifestMismatchError{fmt.Sprintf("manifest: site %s diverged (contextKey %d vs %d, safe %t vs %t); regenerate with chameleon-sites",
				d.Site.ID, ms.ContextKey, d.Site.ContextKey, ms.Safe, d.Site.Safe)}
		}
	}
	return nil
}
