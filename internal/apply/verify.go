package apply

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"chameleon/internal/collections"
	"chameleon/internal/workloads"
)

// Verify: the rewrite's behavioral gate. The named workload runs twice —
// once in-process against the unmodified library (the interpreted,
// adaptive path), once as `go run ./cmd/chameleon -mode off` inside a
// scratch clone of the module with the rewritten files overlaid — and
// the two schedule-independent checksums must agree. Collection
// replacements may not change logical behavior (the §1
// interchangeability requirement); a checksum divergence means the
// rewrite broke that contract and must not be written.

// VerifyResult reports one verification run.
type VerifyResult struct {
	Workload string
	Scale    int
	// Expected is the checksum of the in-process reference run; Got is
	// the rewritten clone's.
	Expected, Got uint64
}

// OK reports whether the checksums agree.
func (v *VerifyResult) OK() bool { return v.Expected == v.Got }

// String renders the outcome one line per contract field.
func (v *VerifyResult) String() string {
	verdict := "MATCH"
	if !v.OK() {
		verdict = "MISMATCH"
	}
	return fmt.Sprintf("verify %s scale %d: expected %#x, rewritten tree %#x: %s",
		v.Workload, v.Scale, v.Expected, v.Got, verdict)
}

// Verify runs the named workload against the rewritten tree and checks
// its checksum against the in-process reference. dir is any directory
// inside the module; scale <= 0 selects the workload's default.
func Verify(dir string, files []FileRewrite, workload string, scale int) (*VerifyResult, error) {
	spec, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	if scale <= 0 {
		scale = spec.DefaultScale
	}
	expected := spec.Run(collections.Plain(), workloads.Baseline, scale)

	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	clone, err := os.MkdirTemp("", "chameleon-apply-verify-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(clone)
	if err := copyTree(root, clone); err != nil {
		return nil, fmt.Errorf("verify: cloning module: %v", err)
	}
	for _, f := range files {
		rel, err := filepath.Rel(root, f.Path)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("verify: rewritten file %s is outside the module root %s", f.Path, root)
		}
		if err := os.WriteFile(filepath.Join(clone, rel), f.Rewritten, 0o644); err != nil {
			return nil, fmt.Errorf("verify: %v", err)
		}
	}

	got, err := runWorkload(clone, workload, scale)
	if err != nil {
		return nil, err
	}
	return &VerifyResult{Workload: workload, Scale: scale, Expected: expected, Got: got}, nil
}

// runWorkload builds and runs the rewritten tree's chameleon binary with
// profiling off and parses the checksum it prints.
func runWorkload(dir, workload string, scale int) (uint64, error) {
	cmd := exec.Command("go", "run", "./cmd/chameleon",
		"-workload", workload, "-scale", strconv.Itoa(scale), "-mode", "off")
	cmd.Dir = dir
	// Hermetic: the module is dependency-free; the shared build cache
	// makes the clone build incremental.
	cmd.Env = append(os.Environ(), "GOPROXY=off", "GOFLAGS=")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return 0, fmt.Errorf("verify: rewritten tree failed to build or run: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "run complete: checksum="); ok {
			v, err := strconv.ParseUint(rest, 0, 64)
			if err != nil {
				return 0, fmt.Errorf("verify: unparseable checksum %q", rest)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("verify: rewritten tree printed no checksum:\n%s", strings.TrimSpace(stdout.String()))
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("verify: no go.mod above %s", dir)
		}
		d = parent
	}
}

// copyTree copies the module tree, skipping VCS metadata.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, entry os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if entry.IsDir() {
			if entry.Name() == ".git" {
				return filepath.SkipDir
			}
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !entry.Type().IsRegular() {
			return nil
		}
		return copyFile(path, filepath.Join(dst, rel))
	})
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
