package apply

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// The rewriter is a byte-splice engine, not an AST printer: each rewrite
// touches only the callee name and (at most) one capacity argument, so
// editing the original bytes in place preserves every comment, line
// break, and formatting choice around the call. The spliced file is then
// passed through format.Source, which is a no-op on already-gofmt'd
// input — output is gofmt-stable by construction.

// edit replaces src[start:end) with text. Edits within a file must not
// overlap.
type edit struct {
	start, end int
	text       string
}

// rewriteFiles groups the rewrite decisions by file and computes each
// file's rewritten contents.
func rewriteFiles(decisions []SiteDecision) ([]FileRewrite, error) {
	byFile := map[string][]*SiteDecision{}
	var paths []string
	for i := range decisions {
		d := &decisions[i]
		if !d.Status.Rewrites() {
			continue
		}
		if _, ok := byFile[d.Site.File]; !ok {
			paths = append(paths, d.Site.File)
		}
		byFile[d.Site.File] = append(byFile[d.Site.File], d)
	}
	sort.Strings(paths)

	var files []FileRewrite
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("rewrite: %v", err)
		}
		var edits []edit
		for _, d := range byFile[path] {
			es, err := siteEdits(d, len(src))
			if err != nil {
				return nil, fmt.Errorf("rewrite %s: %v", d.Site.ID, err)
			}
			edits = append(edits, es...)
		}
		out, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("rewrite %s: %v", path, err)
		}
		formatted, err := format.Source(out)
		if err != nil {
			// A formatting failure means the splice produced invalid
			// Go — never ship it.
			return nil, fmt.Errorf("rewrite %s: spliced source does not parse: %v", path, err)
		}
		files = append(files, FileRewrite{Path: path, Original: src, Rewritten: formatted})
	}
	return files, nil
}

// siteEdits computes the byte edits for one rewrite decision: the callee
// rename (StatusReplace) and the capacity update, when the decision
// carries one.
func siteEdits(d *SiteDecision, srcLen int) ([]edit, error) {
	info := d.Info
	fset := info.Pkg.Fset
	call := info.Call
	off := func(p token.Pos) int { return fset.Position(p).Offset }

	nameID, qual := calleeName(call)
	if nameID == nil {
		return nil, fmt.Errorf("cannot locate the constructor name in the call expression")
	}
	var edits []edit
	if d.Status == StatusReplace {
		edits = append(edits, edit{off(nameID.Pos()), off(nameID.End()), d.Constructor})
	}
	if d.Capacity > 0 {
		capText := qual + "Cap(" + strconv.Itoa(d.Capacity) + ")"
		if len(info.CapArgs) > 0 {
			arg := info.CapArgs[0]
			edits = append(edits, edit{off(arg.Pos()), off(arg.End()), capText})
		} else {
			// Insert after the last argument (never before Rparen: a
			// multi-line call's trailing comma sits between them).
			last := call.Args[len(call.Args)-1]
			p := off(last.End())
			edits = append(edits, edit{p, p, ", " + capText})
		}
	}
	for _, e := range edits {
		if e.start < 0 || e.end > srcLen || e.start > e.end {
			return nil, fmt.Errorf("edit range [%d,%d) outside file", e.start, e.end)
		}
	}
	return edits, nil
}

// calleeName resolves the identifier spelling the constructor's name in
// source, and the package-qualifier text (including the trailing dot)
// new option arguments should use — "collections." for
// collections.NewArrayList[int], "" for a dot-imported or local name.
func calleeName(call *ast.CallExpr) (*ast.Ident, string) {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(f.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f, ""
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return f.Sel, pkg.Name + "."
		}
		return f.Sel, ""
	}
	return nil, ""
}

// applyEdits splices the edits into src, rejecting overlaps.
func applyEdits(src []byte, edits []edit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	for i := 1; i < len(edits); i++ {
		if edits[i].end > edits[i-1].start {
			return nil, fmt.Errorf("overlapping edits at byte %d", edits[i].end)
		}
	}
	out := append([]byte(nil), src...)
	for _, e := range edits {
		out = append(out[:e.start], append([]byte(e.text), out[e.end:]...)...)
	}
	return out, nil
}

// WriteFiles writes every rewritten file in place with the same
// temp-file + rename durability discipline as the snapshot and manifest
// writers: a crash leaves the old file or the new one, never a torn
// hybrid.
func WriteFiles(files []FileRewrite) error {
	for _, f := range files {
		if err := writeFile(f.Path, f.Rewritten); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".apply-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
