// Command chameleon runs a workload under semantic collections profiling
// and prints the ranked per-context report with rule-engine suggestions —
// the tool's primary user-facing output (paper §2.1).
//
// Usage:
//
//	chameleon -workload tvla [-scale N] [-top K] [-rules file] [-json]
//	          [-mode static|dynamic|off] [-online] [-gc-threshold bytes]
//	chameleon -list
//	chameleon -print-rules
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/core"
	"chameleon/internal/experiments"
	"chameleon/internal/fleet"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
	"chameleon/internal/workloads"
)

func main() {
	var (
		workload    = flag.String("workload", "tvla", "workload to profile (see -list)")
		scale       = flag.Int("scale", 0, "workload scale (0 = workload default)")
		top         = flag.Int("top", 10, "show the top-K contexts")
		rulesFile   = flag.String("rules", "", "file of selection rules (default: built-in Table 2 rules)")
		asJSON      = flag.Bool("json", false, "emit the suggestion report as JSON")
		mode        = flag.String("mode", "static", "allocation-context capture: static, dynamic or off")
		online      = flag.Bool("online", false, "enable fully-automatic online replacement (§3.3.2)")
		gcThreshold = flag.Int64("gc-threshold", 64<<10, "simulated-GC threshold in bytes")
		variant     = flag.String("variant", "baseline", "workload variant: baseline or tuned")
		list        = flag.Bool("list", false, "list available workloads")
		printRules  = flag.Bool("print-rules", false, "print the built-in rule set and exit")
		series      = flag.Bool("series", false, "also print the per-GC-cycle potential series (Fig. 2 view)")
		ctxSeries   = flag.Int("context-series", 0, "also print the per-cycle series of the top-K contexts (§4.4)")
		profileOut  = flag.String("profile-out", "", "write the profile snapshot as JSON (for chameleon-rules eval)")
		compare     = flag.Bool("compare", false, "run baseline AND tuned, print per-context gains (§5.2 step 5)")
		plan        = flag.Bool("plan", false, "profile, derive a plan from the report, re-run with it applied (§3.3.2)")
		extended    = flag.Bool("extended", false, "use the extended rule set (SinglyLinkedList, open addressing)")
		gen         = flag.Bool("generational", false, "use the generational simulated collector")
		workers     = flag.Int("workers", 1, "concurrent workers (server and contextstorm workloads)")
		maxContexts = flag.Int("max-contexts", 0, "context budget: bound profiling memory, fold cold contexts into (overflow) (0 = unbounded)")
		overheadPct = flag.Float64("overhead-budget", 0, "overhead governor target as a fraction of wall time, e.g. 0.05 (0 = governor off)")
		govInterval = flag.Duration("governor-interval", 25*time.Millisecond, "overhead governor tick interval")
		healthOut   = flag.String("health-out", "", "write the end-of-run health snapshot as JSON to this file")
		fleetIn     = flag.String("fleet", "", "hot-publish decisions from this fleet snapshot (chameleon-merge output) into the online selector before the run")
	)
	flag.Parse()

	if *printRules {
		fmt.Print(rules.Print(rules.Builtin()))
		return
	}
	if *list {
		for _, s := range workloads.All() {
			fmt.Printf("%-10s %s\n", s.Name, s.Description)
		}
		return
	}

	spec, err := workloads.ByName(*workload)
	if err != nil {
		fatal(err)
	}
	if *scale <= 0 {
		*scale = spec.DefaultScale
	}
	v := workloads.Baseline
	if *variant == "tuned" {
		v = workloads.Tuned
	}
	if *workers > 1 && spec.Name != workloads.ServerSpec.Name && spec.Name != workloads.ContextStormSpec.Name &&
		spec.Name != workloads.FrontendSpec.Name {
		fatal(fmt.Errorf("-workers %d: only the server, contextstorm and frontend workloads run concurrently", *workers))
	}

	var ctxMode alloctx.Mode
	switch *mode {
	case "static":
		ctxMode = alloctx.Static
	case "dynamic":
		ctxMode = alloctx.Dynamic
	case "off":
		ctxMode = alloctx.Off
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	ruleSet := rules.Builtin()
	if *extended {
		ruleSet = rules.Extended()
	}
	if *rulesFile != "" {
		src, err := os.ReadFile(*rulesFile)
		if err != nil {
			fatal(err)
		}
		ruleSet, err = rules.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		if errs := rules.Check(ruleSet, rules.DefaultParams); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "chameleon: rule check:", e)
			}
			os.Exit(1)
		}
		// Vet the user's rules before spending a profiling run on them:
		// warnings are advisory, error-severity findings (rules that
		// provably never fire) abort like vocabulary errors do.
		vetErrors := 0
		for _, d := range rules.Vet(ruleSet, rules.DefaultParams) {
			fmt.Fprintln(os.Stderr, "chameleon: rule vet:", d)
			if d.Severity == rules.SevError {
				vetErrors++
			}
		}
		if vetErrors > 0 {
			os.Exit(1)
		}
	}

	if *compare {
		runCompare(spec, *scale, ctxMode, *gcThreshold, *gen)
		return
	}
	if *plan {
		res, err := experiments.ProfileThenApply(spec.Name, *scale)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatPlanResult(res))
		return
	}

	s := core.NewSession(core.Config{
		Mode:           ctxMode,
		GCThreshold:    *gcThreshold,
		Online:         *online,
		Generational:   *gen,
		KeepContexts:   *ctxSeries > 0,
		MaxContexts:    *maxContexts,
		OverheadBudget: *overheadPct,
	})
	fmt.Fprintf(os.Stderr, "chameleon: running %s (%s, scale %d, %s contexts, online=%v, workers=%d)\n",
		spec.Name, v, *scale, ctxMode, *online, *workers)
	if *fleetIn != "" {
		// Fleet decisions enter through the guarded selector, not around
		// it: each is staged Active with verification scheduled, so this
		// process's own evidence window can roll a bad fleet call back
		// (internal/fleet, docs/FLEET.md).
		if !*online {
			fatal(fmt.Errorf("-fleet requires -online: hot publication targets the live selector"))
		}
		src, err := fleet.ReadSourceFile(*fleetIn)
		if err != nil {
			fatal(err)
		}
		res := fleet.Merge([]fleet.Source{src}, fleet.Options{})
		frep, err := res.Advise(advisor.Options{Rules: ruleSet})
		if err != nil {
			fatal(err)
		}
		fplan := advisor.NewPlan(frep)
		n := fleet.PublishPlan(s.Selector, fplan)
		fmt.Fprintf(os.Stderr, "chameleon: fleet %s: %d record(s), %d dropped; %d decision(s) planned, %d hot-published\n",
			*fleetIn, len(src.Profiles), len(src.Errors), fplan.Len(), n)
	}
	s.StartGovernor(*govInterval)
	var checksum uint64
	var frontend *workloads.FrontendResult
	switch {
	case spec.Name == workloads.FrontendSpec.Name:
		res := workloads.FrontendRun(s.Runtime(), v, *scale, *workers, 0)
		checksum = res.Checksum
		frontend = &res
	case *workers > 1 && spec.Name == workloads.ContextStormSpec.Name:
		checksum = workloads.RunContextStormWorkers(s.Runtime(), v, *scale, *workers)
	case *workers > 1:
		checksum = workloads.RunServerWorkers(s.Runtime(), v, *scale, *workers)
	default:
		checksum = spec.Run(s.Runtime(), v, *scale)
	}
	s.StopGovernor()
	s.FinalGC()

	st := s.Heap.Stats()
	fmt.Printf("run complete: checksum=%#x\n", checksum)
	if frontend != nil {
		fmt.Printf("latency: p50=%v p99=%v p999=%v (%d requests, %.0f req/s)\n",
			frontend.P50, frontend.P99, frontend.P999, frontend.Requests, frontend.Throughput)
	}
	fmt.Printf("heap: peak live=%d bytes, minimal heap=%d bytes, GC cycles=%d, allocated=%d bytes\n",
		st.PeakLive, s.Heap.MinimalHeap(), st.NumGC, st.TotalAllocated)
	fmt.Printf("collections: max live=%d used=%d core=%d bytes (%d objects max)\n\n",
		st.MaxCollections.Live, st.MaxCollections.Used, st.MaxCollections.Core, st.MaxCollectionNo)

	// Always surface the operating tier — a run that finished under budget
	// still needs its profiling conditions on record (a report gathered at
	// a degraded tier reads differently from a full-fidelity one).
	health := s.Health()
	printHealthReport(health)
	if *healthOut != "" {
		out, err := json.MarshalIndent(health, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*healthOut, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chameleon: health snapshot written to %s\n", *healthOut)
	}

	if *series {
		fmt.Println("per-cycle potential series (Fig. 2 view):")
		fmt.Print(experiments.FormatSeries(s.PotentialSeries(), len(s.PotentialSeries())/40+1))
		fmt.Println()
	}

	if *ctxSeries > 0 {
		fmt.Printf("per-context series, top %d by peak live (§4.4):\n", *ctxSeries)
		cs := experiments.TopContextSeries(s, *ctxSeries)
		fmt.Print(experiments.FormatContextSeries(cs, len(s.Heap.Snapshots())/20+1))
		cycle, dist := experiments.PeakTypeDistribution(s)
		fmt.Printf("type distribution at peak cycle %d: %s\n\n", cycle, heap.FormatTypeDist(dist))
	}

	if *profileOut != "" {
		// Crash-safe write: temp file + fsync + rename, so an interrupted
		// run never leaves a torn snapshot (docs/ROBUSTNESS.md).
		if err := profiler.WriteProfilesFile(*profileOut, s.Prof.Snapshot()); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chameleon: profile snapshot written to %s\n", *profileOut)
	}

	rep, err := s.Report(advisor.Options{Rules: ruleSet, Top: *top})
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Printf("top %d allocation contexts (Fig. 3 view):\n", *top)
	fmt.Print(rep.FormatTopContexts(*top))
	fmt.Println("\nsuggestions (§2.1 report):")
	fmt.Print(rep.Format())
	if s.Selector != nil {
		printOnlineReport(s)
	}
}

// printHealthReport summarizes the overload-protection state: the context
// budget with its eviction/overflow accounting, and — when the governor
// ran — the degradation-ladder position with its transition history
// (docs/ROBUSTNESS.md).
func printHealthReport(h core.Health) {
	fmt.Printf("profiling health: tier=%s\n", h.Tier)
	b := h.Budget
	if b.MaxContexts > 0 {
		fmt.Printf("  context budget: %d max, %d interned, %d tracked by profiler, %d live instances\n",
			b.MaxContexts, b.TableContexts, b.ProfilerContexts, b.LiveInstances)
		fmt.Printf("  overflow: %d denied admissions, %d evictions, %d allocs attributed to %s\n",
			b.TableOverflowAdmissions, b.Evictions, b.OverflowAllocs, alloctx.OverflowLabel)
	}
	if g := h.Governor; g != nil {
		fmt.Printf("  governor: target overhead %.2f%%, last measured %.2f%%, rate 1/%d, %d transitions\n",
			100*g.TargetOverhead, 100*g.LastOverhead, g.Rate, g.TransitionCount)
		for _, tr := range g.Transitions {
			fmt.Printf("    tick %d: %s -> %s (rate 1/%d, overhead %.2f%%, %s)\n",
				tr.Tick, tr.From, tr.To, tr.Rate, 100*tr.Overhead, tr.Reason)
		}
	}
	fmt.Println()
}

// printOnlineReport summarizes the guarded online adaptation: the
// selector-wide counters and each context's position in the decision state
// machine (docs/ROBUSTNESS.md).
func printOnlineReport(s *core.Session) {
	sel := s.Selector
	fmt.Printf("\nonline mode: %d allocations received a replaced implementation\n", sel.Replacements())
	fmt.Printf("guarded adaptation: %d rule evaluations, %d verified, %d rolled back, %d quarantines, %d contained panics\n",
		sel.Decides(), sel.Verifies(), sel.Rollbacks(), sel.Quarantines(), sel.Panics())
	if n := sel.Published(); n > 0 {
		fmt.Printf("fleet: %d externally derived decision(s) hot-published into this session\n", n)
	}
	if disabled, msg := sel.Disabled(); disabled {
		fmt.Printf("selector DISABLED: panic budget exhausted (%s)\n", msg)
	}
	if h := s.Runtime().SelectorHealth(); h.Panics > 0 {
		fmt.Printf("runtime containment: %d selector panics recovered on the allocation path (last: %s)\n",
			h.Panics, h.LastError)
	}
	sts := sel.Statuses()
	if len(sts) == 0 {
		return
	}
	labels := make(map[uint64]string)
	for _, p := range s.Prof.Snapshot() {
		labels[p.Context.Key()] = p.Context.String()
	}
	fmt.Println("per-context decision state:")
	for _, cs := range sts {
		label := labels[cs.Context]
		if label == "" {
			label = fmt.Sprintf("ctx %#x", cs.Context)
		}
		line := fmt.Sprintf("  %-11s %s", cs.Status, label)
		if cs.Applied {
			line += fmt.Sprintf(" -> %v", cs.Decision.Impl)
			if cs.Decision.Capacity > 0 {
				line += fmt.Sprintf("(cap %d)", cs.Decision.Capacity)
			}
		}
		var notes []string
		if cs.Rollbacks > 0 {
			notes = append(notes, fmt.Sprintf("rollbacks=%d", cs.Rollbacks))
		}
		if cs.Panics > 0 {
			notes = append(notes, fmt.Sprintf("panics=%d", cs.Panics))
		}
		if cs.Backoff > 0 {
			notes = append(notes, fmt.Sprintf("backoff=%d", cs.Backoff))
		}
		if cs.LastError != "" {
			notes = append(notes, cs.LastError)
		}
		if len(notes) > 0 {
			line += " [" + strings.Join(notes, ", ") + "]"
		}
		fmt.Println(line)
	}
}

// runCompare executes the §5.2 step 5 comparison: profile the baseline and
// the tuned variant, then print per-context gains and the overall
// minimal-heap change.
func runCompare(spec workloads.Spec, scale int, mode alloctx.Mode, gcThreshold int64, gen bool) {
	runOne := func(v workloads.Variant) (*core.Session, uint64) {
		s := core.NewSession(core.Config{Mode: mode, GCThreshold: gcThreshold, Generational: gen})
		sum := spec.Run(s.Runtime(), v, scale)
		s.FinalGC()
		return s, sum
	}
	before, sumB := runOne(workloads.Baseline)
	after, sumT := runOne(workloads.Tuned)
	if sumB != sumT {
		fatal(fmt.Errorf("tuned variant changed the computed result"))
	}
	deltas := advisor.Compare(before.Prof.Snapshot(), after.Prof.Snapshot())
	fmt.Printf("per-context gains, %s baseline -> tuned (top 15):\n", spec.Name)
	fmt.Print(advisor.FormatCompare(deltas, 15))
	b, a := before.Heap.MinimalHeap(), after.Heap.MinimalHeap()
	fmt.Printf("\nminimal heap: %d -> %d bytes (%.2f%% improvement)\n",
		b, a, 100*float64(b-a)/float64(b))
	fmt.Printf("GC cycles: %d -> %d\n", before.Heap.Stats().NumGC, after.Heap.Stats().NumGC)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chameleon:", err)
	os.Exit(1)
}
