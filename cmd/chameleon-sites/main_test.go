package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/analysis"
)

// repoRoot is resolved at package init, before any test chdirs away
// from the package directory.
var repoRoot = func() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "..", "..")
}()

// runCLI invokes the command from the repository root and returns the
// exit status with both streams. The chdir is by absolute path so tests
// that invoke the CLI more than once stay anchored.
func runCLI(t *testing.T, args ...string) (status int, stdout, stderr string) {
	t.Helper()
	t.Chdir(repoRoot)
	var out, errb bytes.Buffer
	status = run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func TestCleanTreeExitsZero(t *testing.T) {
	status, stdout, stderr := runCLI(t, "./examples/sitecheck/safe/...")
	if status != exitOK {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", status, stdout, stderr)
	}
	if !strings.Contains(stdout, "0 errors, 0 warnings") {
		t.Errorf("summary missing: %q", stdout)
	}
}

func TestUnsafeFixturesExitOne(t *testing.T) {
	status, stdout, _ := runCLI(t, "./examples/sitecheck/...")
	if status != exitFailure {
		t.Fatalf("exit = %d, want 1 (error-severity findings planted)\n%s", status, stdout)
	}
	for _, code := range []string{"S003", "S005", "S006", "S007"} {
		if !strings.Contains(stdout, code) {
			t.Errorf("expected %s in output:\n%s", code, stdout)
		}
	}
	// Info-level classification facts stay out of default output.
	if strings.Contains(stdout, "[S001]") {
		t.Errorf("info finding printed without -all:\n%s", stdout)
	}
}

func TestAllIncludesInfo(t *testing.T) {
	status, stdout, _ := runCLI(t, "-all", "./examples/sitecheck/unsafe/...")
	if status != exitFailure {
		t.Fatalf("exit = %d, want 1", status)
	}
	for _, code := range []string{"S001", "S002", "S004", "S008"} {
		if !strings.Contains(stdout, code) {
			t.Errorf("expected %s with -all:\n%s", code, stdout)
		}
	}
}

func TestStrictPromotesWarnings(t *testing.T) {
	// The safe tree is warning-free; a rules file whose LinkedList rule
	// is dead against it produces exactly one S009 warning.
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "dead.cham")
	if err := os.WriteFile(rulesPath, []byte("LinkedList : #get > 4 -> ArrayList\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	status, stdout, _ := runCLI(t, "-rules", rulesPath, "./examples/sitecheck/safe/...")
	if status != exitOK {
		t.Fatalf("warnings alone must not fail: exit = %d\n%s", status, stdout)
	}
	if !strings.Contains(stdout, "S009") {
		t.Fatalf("expected the dead-rule warning:\n%s", stdout)
	}
	status, _, _ = runCLI(t, "-strict", "-rules", rulesPath, "./examples/sitecheck/safe/...")
	if status != exitFailure {
		t.Fatalf("-strict exit = %d, want 1", status)
	}
}

func TestJSONOutput(t *testing.T) {
	status, stdout, _ := runCLI(t, "-json", "-all", "./examples/sitecheck/unsafe/...")
	if status != exitFailure {
		t.Fatalf("exit = %d, want 1", status)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("empty diagnostic array for the unsafe tree")
	}
}

func TestJSONEmptyIsArray(t *testing.T) {
	status, stdout, _ := runCLI(t, "-json", "./examples/sitecheck/safe/...")
	if status != exitOK {
		t.Fatalf("exit = %d, want 0", status)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean JSON output = %q, want []", stdout)
	}
}

func TestManifestFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sites.json")
	status, _, stderr := runCLI(t, "-manifest", path, "./examples/sitecheck/safe/...")
	if status != exitOK {
		t.Fatalf("exit = %d: %s", status, stderr)
	}
	m, err := analysis.ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sites) == 0 || m.Module != "chameleon" {
		t.Errorf("manifest sites=%d module=%q", len(m.Sites), m.Module)
	}
}

func TestUsageErrors(t *testing.T) {
	if status, _, _ := runCLI(t, "-no-such-flag"); status != exitUsage {
		t.Errorf("unknown flag exit = %d, want 2", status)
	}
	if status, _, _ := runCLI(t, "-builtin", "-extended", "./..."); status != exitUsage {
		t.Errorf("conflicting rule sources exit = %d, want 2", status)
	}
}

func TestBadInputsExitThree(t *testing.T) {
	if status, _, _ := runCLI(t, "./no/such/package/..."); status != exitBadInput {
		t.Errorf("unloadable pattern exit = %d, want 3", status)
	}
	if status, _, _ := runCLI(t, "-rules", "no-such-file.cham", "./examples/sitecheck/safe/..."); status != exitBadInput {
		t.Errorf("missing rules file exit = %d, want 3", status)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.cham")
	if err := os.WriteFile(bad, []byte("this is not a rule"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := runCLI(t, "-rules", bad, "./examples/sitecheck/safe/..."); status != exitBadInput {
		t.Errorf("unparseable rules exit = %d, want 3", status)
	}
	snap := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(snap, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := runCLI(t, "-profile", snap, "./examples/sitecheck/safe/..."); status != exitBadInput {
		t.Errorf("unreadable snapshot exit = %d, want 3", status)
	}
}

func TestBuiltinCrossCheck(t *testing.T) {
	// The shipped rule sets against the whole fixture tree: must load,
	// and any dead-rule/uncovered findings are warnings/infos, never a
	// crash. (Exit is 1 from the planted error-severity sites.)
	status, stdout, stderr := runCLI(t, "-builtin", "./examples/sitecheck/...")
	if status != exitFailure {
		t.Fatalf("exit = %d, want 1 (planted errors)\nstdout: %s\nstderr: %s", status, stdout, stderr)
	}
}
