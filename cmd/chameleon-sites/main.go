// Command chameleon-sites is the static half of the chameleon workflow:
// it discovers every collection allocation site in a Go program, proves
// or refutes each site's specialization safety, and emits the versioned
// site manifest that joins static sites to runtime profile snapshots
// (internal/analysis, docs/ANALYSIS.md).
//
//	chameleon-sites ./...                          # analyze, print findings
//	chameleon-sites -manifest sites.json ./...     # also write the manifest
//	chameleon-sites -builtin ./...                 # cross-check the builtin rules
//	chameleon-sites -profile p.json ./...          # cross-check a snapshot
//
// Exit codes form a contract scripts can dispatch on, aligned with
// chameleon-rules:
//
//	0  success (no error-severity diagnostics)
//	1  runtime failure, or error-severity diagnostics (warnings too with -strict)
//	2  usage error
//	3  an input does not load: packages fail to type-check, the rules
//	   file does not parse, or the snapshot does not read
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"chameleon/internal/analysis"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
)

const (
	exitOK       = 0
	exitFailure  = 1 // runtime failure, or error-severity diagnostics
	exitUsage    = 2
	exitBadInput = 3 // packages, rules, or snapshot fail to load
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes a full command line and reports the process exit status.
// It is the testable entry point: main only binds it to os.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chameleon-sites", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	manifestPath := fs.String("manifest", "", "write the site manifest JSON to this path")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	all := fs.Bool("all", false, "print info-level findings too, not only warnings and errors")
	strict := fs.Bool("strict", false, "exit 1 on warnings, not only errors")
	rulesFile := fs.String("rules", "", "cross-check a rule file (S009 dead rules, S010 uncovered sites)")
	builtin := fs.Bool("builtin", false, "cross-check the shipped builtin rule set")
	extended := fs.Bool("extended", false, "cross-check the shipped extended rule set")
	profilePath := fs.String("profile", "", "cross-check a profile snapshot (S011 stale contexts)")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var opts analysis.Options
	sources := 0
	for _, set := range []bool{*builtin, *extended, *rulesFile != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		fmt.Fprintln(stderr, "chameleon-sites: choose one of -rules, -builtin, or -extended")
		return exitUsage
	case *builtin:
		opts.Rules, opts.RuleFile = rules.Builtin(), "<builtin>"
	case *extended:
		opts.Rules, opts.RuleFile = rules.Extended(), "<extended>"
	case *rulesFile != "":
		src, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-sites:", err)
			return exitBadInput
		}
		rs, err := rules.Parse(string(src))
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-sites:", err)
			return exitBadInput
		}
		opts.Rules, opts.RuleFile = rs, *rulesFile
	}
	if *profilePath != "" {
		f, err := os.Open(*profilePath)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-sites:", err)
			return exitBadInput
		}
		profiles, err := profiler.ReadProfiles(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-sites:", err)
			return exitBadInput
		}
		opts.Profiles, opts.SnapshotFile = profiles, *profilePath
	}

	res, err := analysis.Analyze(*dir, patterns, opts)
	if err != nil {
		if le, ok := err.(*analysis.LoadError); ok {
			for _, p := range le.Problems {
				fmt.Fprintln(stderr, "chameleon-sites:", p)
			}
			return exitBadInput
		}
		fmt.Fprintln(stderr, "chameleon-sites:", err)
		return exitFailure
	}

	if *manifestPath != "" {
		if err := analysis.WriteManifestFile(*manifestPath, res.Manifest()); err != nil {
			fmt.Fprintln(stderr, "chameleon-sites:", err)
			return exitFailure
		}
	}

	errors, warnings, infos := 0, 0, 0
	for _, d := range res.Diagnostics {
		switch d.Severity {
		case analysis.SevError:
			errors++
		case analysis.SevWarning:
			warnings++
		default:
			infos++
		}
	}
	if *jsonOut {
		diags := res.Diagnostics
		if !*all {
			diags = filterInfo(diags)
		}
		if diags == nil {
			diags = []analysis.Diagnostic{} // always an array, never null
		}
		b, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-sites:", err)
			return exitFailure
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		for _, d := range res.Diagnostics {
			if d.Severity == analysis.SevInfo && !*all {
				continue
			}
			fmt.Fprintln(stdout, d)
		}
		safe := 0
		for _, s := range res.Sites {
			if s.Safe {
				safe++
			}
		}
		fmt.Fprintf(stdout, "%d packages: %d sites (%d safe): %d errors, %d warnings, %d infos\n",
			len(res.Packages), len(res.Sites), safe, errors, warnings, infos)
	}
	if errors > 0 || (*strict && warnings > 0) {
		return exitFailure
	}
	return exitOK
}

// filterInfo drops info-severity diagnostics.
func filterInfo(diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Severity != analysis.SevInfo {
			out = append(out, d)
		}
	}
	return out
}

func usage(w io.Writer) int {
	fmt.Fprint(w, `usage: chameleon-sites [flags] [packages]

Discovers chameleon collection allocation sites, classifies each as safe
or unsafe for ahead-of-time specialization, and cross-checks the site
manifest against rule sets and profile snapshots (docs/ANALYSIS.md).

flags:
  -dir D           directory to resolve package patterns in (default ".")
  -manifest F      write the versioned site manifest JSON to F
  -json            emit diagnostics as a JSON array
  -all             print info-level findings too (classification facts)
  -strict          exit 1 on warnings, not only errors
  -rules F         cross-check a rule file (S009/S010)
  -builtin         cross-check the shipped builtin rule set
  -extended        cross-check the shipped extended rule set
  -profile F       cross-check a profile snapshot (S011)

exit codes:
  0  success (no error-severity diagnostics)
  1  runtime failure, or error-severity diagnostics (warnings too with -strict)
  2  usage error
  3  an input does not load (packages, rules file, or snapshot)
`)
	return exitUsage
}
