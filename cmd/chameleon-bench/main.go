// Command chameleon-bench regenerates the paper's evaluation figures and
// tables (§5) against the simulated substrate:
//
//	fig2  — TVLA: collections as % of live data per GC cycle
//	fig3  — TVLA: top allocation contexts + suggestions (§2.1 report)
//	fig6  — minimal-heap improvement per benchmark
//	fig7  — running-time improvement per benchmark
//	fig8  — bloat: the collections spike
//	sweep — §2.3 hybrid conversion-threshold sweep on TVLA
//	plan  — §3.3.2 tool-applied plan: profile -> plan -> re-run
//	frontend — latency-SLO tail under concurrent-native backings
//	auto  — §5.4 fully-automatic-mode overhead (TVLA vs PMD)
//	all   — everything above
//
// Usage: chameleon-bench -experiment fig6 [-scale N] [-reps R]
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon/internal/experiments"
	"chameleon/internal/workloads"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2|fig3|fig6|fig7|fig8|sweep|auto|all")
		scale      = flag.Int("scale", 0, "override every workload's scale (0 = defaults)")
		reps       = flag.Int("reps", 3, "timing repetitions (minimum is reported)")
	)
	flag.Parse()

	scales := map[string]int{}
	if *scale > 0 {
		for _, s := range workloads.All() {
			scales[s.Name] = *scale
		}
	}

	run := func(name string, f func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "chameleon-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *experiment == name || *experiment == "all" }

	if want("fig2") {
		run("Fig. 2: TVLA collections as % of live data per GC cycle", func() error {
			pts, err := experiments.Fig2(*scale)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSeries(pts, len(pts)/40+1))
			return nil
		})
	}
	if want("fig3") {
		run("Fig. 3 + §2.1: TVLA top contexts and suggestions", func() error {
			res, err := experiments.Fig3(*scale)
			if err != nil {
				return err
			}
			fmt.Print(res.Format())
			return nil
		})
	}
	if want("fig6") {
		run("Fig. 6: minimal-heap improvement per benchmark", func() error {
			rows, err := experiments.Fig6(scales)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFig6(rows))
			return nil
		})
	}
	if want("fig7") {
		run("Fig. 7: running-time improvement per benchmark", func() error {
			rows, err := experiments.Fig7(scales, *reps)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFig7(rows))
			return nil
		})
	}
	if want("fig8") {
		run("Fig. 8: bloat collections spike", func() error {
			pts, err := experiments.Fig8(*scale)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSeries(pts, len(pts)/40+1))
			return nil
		})
	}
	if want("sweep") {
		run("§2.3: SizeAdapting conversion-threshold sweep on TVLA", func() error {
			rows, base, err := experiments.Sweep(nil, *scale, *reps)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatSweep(rows, base))
			return nil
		})
	}
	if want("calibrate") {
		run("§3.3.1: per-environment rule-constant calibration (Z)", func() error {
			fmt.Print(experiments.FormatCalibration(experiments.Calibrate(nil, 0, *reps)))
			return nil
		})
	}
	if want("plan") {
		run("§3.3.2: tool-applied plan (profile -> plan -> re-run)", func() error {
			for _, name := range []string{"tvla", "findbugs"} {
				r, err := experiments.ProfileThenApply(name, *scale)
				if err != nil {
					return err
				}
				fmt.Print(experiments.FormatPlanResult(r))
				fmt.Println()
			}
			return nil
		})
	}
	if want("frontend") {
		run("frontend: latency-SLO tail under concurrent-native backings", func() error {
			rows, err := experiments.Frontend(*scale, nil, *reps)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatFrontend(rows))
			return nil
		})
	}
	if want("auto") {
		run("§5.4: fully-automatic online mode overhead", func() error {
			rows, err := experiments.AutoOverhead(scales, *reps)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatAuto(rows))
			return nil
		})
	}
	switch *experiment {
	case "fig2", "fig3", "fig6", "fig7", "fig8", "sweep", "plan", "calibrate", "frontend", "auto", "all":
	default:
		fmt.Fprintf(os.Stderr, "chameleon-bench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}
