// Command bench-trajectory runs the repo's headline benchmarks and
// writes their ns/op numbers to a JSON file (BENCH_pr<N>.json by
// convention), so successive PRs can diff the performance trajectory of
// the profiling hot path. CI runs it with -benchtime 1x as a smoke and
// uploads the JSON as an artifact; locally, run with a real benchtime to
// regenerate the checked-in file:
//
//	go run ./cmd/bench-trajectory -benchtime 0.3s -count 3 -out BENCH_pr3.json
//
// The minimum ns/op across -count repetitions is kept per benchmark (the
// usual way to strip scheduler noise from single-machine runs).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

// headline is the benchmark set the trajectory tracks, as one -bench regex.
const headline = "BenchmarkPerInstanceTracking|BenchmarkMapGet|BenchmarkListAppend|BenchmarkAutoOverhead|BenchmarkConcurrentServer|BenchmarkGovernorTiers"

// resultLine matches one `go test -bench` result, e.g.
// "BenchmarkMapGet/HashMap/n=4-8   49134991   6.733 ns/op".
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

func main() {
	var (
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value (1x = smoke)")
		count     = flag.Int("count", 1, "repetitions; the minimum ns/op is kept")
		out       = flag.String("out", "BENCH_pr3.json", "output JSON path")
		bench     = flag.String("bench", headline, "benchmark selection regex")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		"."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: go %v: %v\n", args, err)
		os.Exit(1)
	}

	nsop := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if cur, ok := nsop[m[1]]; !ok || v < cur {
			nsop[m[1]] = v
		}
	}
	if len(nsop) == 0 {
		fmt.Fprintln(os.Stderr, "bench-trajectory: no benchmark results parsed")
		os.Exit(1)
	}

	// Deterministic output: sorted keys, stable shape.
	names := make([]string, 0, len(nsop))
	for n := range nsop {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	fmt.Fprintf(&buf, "  %q: %q,\n", "benchtime", *benchtime)
	fmt.Fprintf(&buf, "  %q: %d,\n", "count", *count)
	buf.WriteString("  \"ns_per_op\": {\n")
	for i, n := range names {
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(&buf, "    %q: %g%s\n", n, nsop[n], comma)
	}
	buf.WriteString("  }\n}\n")

	// Sanity: the file must round-trip as JSON.
	var chk map[string]any
	if err := json.Unmarshal(buf.Bytes(), &chk); err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: generated invalid JSON: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bench-trajectory: wrote %d benchmarks to %s\n", len(names), *out)
}
