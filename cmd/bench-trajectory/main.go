// Command bench-trajectory runs the repo's headline benchmarks and
// writes their numbers to a JSON file (BENCH_pr<N>.json by convention),
// so successive PRs can diff the performance trajectory of the profiling
// hot path. CI runs it with -benchtime 1x as a smoke and uploads the JSON
// as an artifact; locally, run with a real benchtime to regenerate the
// checked-in file:
//
//	go run ./cmd/bench-trajectory -benchtime 0.3s -count 3 -out BENCH_pr3.json
//
// The minimum ns/op across -count repetitions is kept per benchmark (the
// usual way to strip scheduler noise from single-machine runs); custom
// metrics (req/s, latency quantiles, allocs/op, ...) are taken from the
// same repetition that produced the minimum.
//
// After the run, the fresh numbers are compared against the latest
// committed BENCH_pr*.json and a per-benchmark delta table is printed,
// flagging regressions above 10%. The comparison is advisory (exit code
// stays 0): machines differ between PRs, so the table is review input,
// not a gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// headline is the benchmark set the trajectory tracks, as one -bench regex.
const headline = "BenchmarkPerInstanceTracking|BenchmarkMapGet|BenchmarkListAppend|BenchmarkAutoOverhead|BenchmarkConcurrentServer|BenchmarkGovernorTiers|BenchmarkFrontendLatency|BenchmarkFrontendTiers"

// resultLine matches one `go test -bench` result up to the iteration
// count, e.g. "BenchmarkMapGet/HashMap/n=4-8   49134991   6.733 ns/op";
// the remainder of the line is parsed as value/unit metric pairs.
var resultLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	var (
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value (1x = smoke)")
		count     = flag.Int("count", 1, "repetitions; the minimum ns/op is kept")
		out       = flag.String("out", "BENCH_pr3.json", "output JSON path")
		bench     = flag.String("bench", headline, "benchmark selection regex")
		baseline  = flag.String("baseline", "", "BENCH_pr*.json to diff against (default: latest committed, excluding -out)")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		"."}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: go %v: %v\n", args, err)
		os.Exit(1)
	}

	nsop := map[string]float64{}
	metrics := map[string]map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], parseMetrics(m[2])
		v, ok := rest["ns/op"]
		if !ok {
			continue
		}
		if cur, seen := nsop[name]; !seen || v < cur {
			nsop[name] = v
			delete(rest, "ns/op")
			if len(rest) > 0 {
				metrics[name] = rest
			}
		}
	}
	if len(nsop) == 0 {
		fmt.Fprintln(os.Stderr, "bench-trajectory: no benchmark results parsed")
		os.Exit(1)
	}

	// Deterministic output: sorted keys, stable shape.
	names := make([]string, 0, len(nsop))
	for n := range nsop {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	fmt.Fprintf(&buf, "  %q: %q,\n", "benchtime", *benchtime)
	fmt.Fprintf(&buf, "  %q: %d,\n", "count", *count)
	buf.WriteString("  \"ns_per_op\": {\n")
	for i, n := range names {
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(&buf, "    %q: %g%s\n", n, nsop[n], comma)
	}
	buf.WriteString("  },\n")
	buf.WriteString("  \"metrics\": {\n")
	withMetrics := make([]string, 0, len(metrics))
	for _, n := range names {
		if len(metrics[n]) > 0 {
			withMetrics = append(withMetrics, n)
		}
	}
	for i, n := range withMetrics {
		units := make([]string, 0, len(metrics[n]))
		for u := range metrics[n] {
			units = append(units, u)
		}
		sort.Strings(units)
		fmt.Fprintf(&buf, "    %q: {", n)
		for j, u := range units {
			if j > 0 {
				buf.WriteString(", ")
			}
			fmt.Fprintf(&buf, "%q: %g", u, metrics[n][u])
		}
		comma := ","
		if i == len(withMetrics)-1 {
			comma = ""
		}
		fmt.Fprintf(&buf, "}%s\n", comma)
	}
	buf.WriteString("  }\n}\n")

	// Sanity: the file must round-trip as JSON.
	var chk map[string]any
	if err := json.Unmarshal(buf.Bytes(), &chk); err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: generated invalid JSON: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bench-trajectory: wrote %d benchmarks to %s\n", len(names), *out)

	printDelta(*baseline, *out, nsop)
}

// parseMetrics splits the tail of a benchmark line into value/unit pairs
// ("6.733 ns/op  235057 req/s" -> {"ns/op": 6.733, "req/s": 235057}).
func parseMetrics(tail string) map[string]float64 {
	fields := strings.Fields(tail)
	out := make(map[string]float64, len(fields)/2)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // not a metric pair; stop at the first non-conforming token
		}
		out[fields[i+1]] = v
	}
	return out
}

// printDelta compares fresh ns/op numbers against a committed baseline
// file and prints a per-benchmark table, flagging >10% regressions. The
// comparison is informational only — hardware differs across PRs — so it
// never fails the run.
func printDelta(baseline, out string, fresh map[string]float64) {
	if baseline == "" {
		baseline = latestBenchFile(out)
	}
	if baseline == "" {
		return
	}
	raw, err := os.ReadFile(baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-trajectory: baseline %s: %v\n", baseline, err)
		return
	}
	var prev struct {
		NsPerOp map[string]float64 `json:"ns_per_op"`
	}
	if err := json.Unmarshal(raw, &prev); err != nil || len(prev.NsPerOp) == 0 {
		fmt.Fprintf(os.Stderr, "bench-trajectory: baseline %s: unusable (%v)\n", baseline, err)
		return
	}

	names := make([]string, 0, len(fresh))
	for n := range fresh {
		if _, ok := prev.NsPerOp[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Printf("delta vs %s: no overlapping benchmarks\n", baseline)
		return
	}
	regressions := 0
	fmt.Printf("\ndelta vs %s (>+10%% flagged; advisory, different machines differ):\n", baseline)
	fmt.Printf("  %-64s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, n := range names {
		old, cur := prev.NsPerOp[n], fresh[n]
		pct := 100 * (cur - old) / old
		flag := ""
		if pct > 10 {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Printf("  %-64s %14.0f %14.0f %+7.1f%%%s\n", n, old, cur, pct, flag)
	}
	if regressions > 0 {
		fmt.Printf("bench-trajectory: %d benchmark(s) regressed >10%% vs %s (advisory)\n", regressions, baseline)
	}
}

// latestBenchFile finds the highest-numbered committed BENCH_pr<N>.json,
// skipping the file this run is about to write.
func latestBenchFile(out string) string {
	matches, _ := filepath.Glob("BENCH_pr*.json")
	re := regexp.MustCompile(`^BENCH_pr(\d+)\.json$`)
	best, bestN := "", -1
	outAbs, _ := filepath.Abs(out)
	for _, f := range matches {
		fAbs, _ := filepath.Abs(f)
		if fAbs == outAbs {
			continue
		}
		m := re.FindStringSubmatch(filepath.Base(f))
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > bestN {
			bestN, best = n, f
		}
	}
	return best
}
