// Command chameleon-rules is the toolchain for the Fig. 4 selection-rule
// language:
//
//	chameleon-rules fmt   <rules.cham>                 # parse + pretty-print
//	chameleon-rules check <rules.cham> [-param X=32]   # static checks
//	chameleon-rules eval  <rules.cham> -profile p.json # offline rule run
//	chameleon-rules explain <rules.cham> -profile p.json -context substr
//	                                                   # trace why rules fire or not
//	chameleon-rules builtin [-extended]                # print the shipped sets
//
// The eval subcommand consumes a profile snapshot written by
// `chameleon -profile-out` and prints the suggestion report without
// re-running the program — the offline half of the paper's workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chameleon/internal/advisor"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "fmt":
		cmdFmt(os.Args[2:])
	case "check":
		cmdCheck(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "explain":
		cmdExplain(os.Args[2:])
	case "builtin":
		cmdBuiltin(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: chameleon-rules fmt|check|eval|explain|builtin [args]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chameleon-rules:", err)
	os.Exit(1)
}

// paramFlags collects repeated -param NAME=VALUE flags on top of the
// default environment.
type paramFlags struct{ params rules.Params }

func (p *paramFlags) String() string { return fmt.Sprint(p.params) }

func (p *paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p.params[strings.TrimSpace(name)] = v
	return nil
}

func newParams() *paramFlags {
	p := &paramFlags{params: rules.Params{}}
	for k, v := range rules.DefaultParams {
		p.params[k] = v
	}
	return p
}

// splitFile accepts the rules file either as the leading argument
// ("eval rules.cham -profile p.json") or as the trailing positional after
// flags ("eval -profile p.json rules.cham"); Go's flag package handles the
// latter natively, so only the leading form needs peeling off.
func splitFile(args []string) (file string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

func loadRules(path string) *rules.RuleSet {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	rs, err := rules.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	return rs
}

func cmdFmt(args []string) {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	write := fs.Bool("w", false, "write the formatted output back to the file")
	path, rest := splitFile(args)
	fs.Parse(rest)
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fatal(fmt.Errorf("fmt: expected one rules file"))
	}
	rs := loadRules(path)
	out := rules.Print(rs)
	if *write {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(out)
}

func cmdCheck(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	fs.Parse(rest)
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fatal(fmt.Errorf("check: expected one rules file"))
	}
	rs := loadRules(path)
	errs := rules.Check(rs, params.params)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Printf("%d rules OK; parameters referenced: %v\n", len(rs.Rules), rules.ParamsOf(rs))
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	profilePath := fs.String("profile", "", "profile snapshot JSON (from chameleon -profile-out)")
	top := fs.Int("top", 10, "show the top-K contexts")
	minPotential := fs.Int64("min-potential", 0, "suppress space replacements below this potential (bytes; -1 disables)")
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	fs.Parse(rest)
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" || *profilePath == "" {
		fatal(fmt.Errorf("eval: expected a rules file and -profile snapshot"))
	}
	rs := loadRules(path)
	if errs := rules.Check(rs, params.params); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, e)
		}
		os.Exit(1)
	}
	f, err := os.Open(*profilePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	profiles, err := profiler.ReadProfiles(f)
	if err != nil {
		fatal(err)
	}
	rep, err := advisor.Advise(profiles, advisor.Options{
		Rules:        rs,
		Params:       params.params,
		Top:          *top,
		MinPotential: *minPotential,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Format())
}

// cmdExplain traces rule evaluation against a profiled context: why each
// rule fired or did not.
func cmdExplain(args []string) {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	profilePath := fs.String("profile", "", "profile snapshot JSON (from chameleon -profile-out)")
	ctxSubstr := fs.String("context", "", "substring selecting the context(s) to explain")
	firedOnly := fs.Bool("fired", false, "show only rules that fired")
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	fs.Parse(rest)
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" || *profilePath == "" {
		fatal(fmt.Errorf("explain: expected a rules file and -profile snapshot"))
	}
	rs := loadRules(path)
	f, err := os.Open(*profilePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	profiles, err := profiler.ReadProfiles(f)
	if err != nil {
		fatal(err)
	}
	opts := rules.EvalOptions{Params: params.params}
	shown := 0
	for _, p := range profiles {
		if *ctxSubstr != "" && !strings.Contains(p.Context.String(), *ctxSubstr) {
			continue
		}
		fmt.Printf("context: %s (declared %s, avgMaxSize %.1f, potential %d)\n",
			p.Context, p.Declared, p.MaxSizeAvg, p.Potential())
		for _, r := range rs.Rules {
			ex := rules.Explain(r, p, opts)
			if *firedOnly && !ex.Fired {
				continue
			}
			if !ex.SrcMatched && *ctxSubstr == "" {
				continue // keep unfiltered output readable
			}
			fmt.Print(ex.String())
		}
		fmt.Println()
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(os.Stderr, "chameleon-rules: no contexts matched")
	}
}

func cmdBuiltin(args []string) {
	fs := flag.NewFlagSet("builtin", flag.ExitOnError)
	extended := fs.Bool("extended", false, "include the extension rules (SinglyLinkedList, open addressing)")
	fs.Parse(args)
	if *extended {
		fmt.Print(rules.Print(rules.Extended()))
		return
	}
	fmt.Print(rules.Print(rules.Builtin()))
}
