// Command chameleon-rules is the toolchain for the Fig. 4 selection-rule
// language:
//
//	chameleon-rules fmt   <rules.cham>                 # parse + pretty-print
//	chameleon-rules check <rules.cham> [-param X=32]   # vocabulary checks
//	chameleon-rules vet   <rules.cham> [-json]         # semantic static analysis
//	chameleon-rules eval  <rules.cham> -profile p.json # offline rule run
//	chameleon-rules explain <rules.cham> -profile p.json -context substr
//	                                                   # trace why rules fire or not
//	chameleon-rules builtin [-extended]                # print the shipped sets
//
// The eval subcommand consumes a profile snapshot written by
// `chameleon -profile-out` and prints the suggestion report without
// re-running the program — the offline half of the paper's workflow.
//
// Exit codes form a contract scripts can dispatch on:
//
//	0  success
//	1  runtime failure, or error-severity vet diagnostics
//	2  usage error
//	3  the rules file does not parse
//	4  the rules parse but fail vocabulary checks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"chameleon/internal/advisor"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
)

const (
	exitOK      = 0
	exitFailure = 1 // runtime failure, or error-severity vet findings
	exitUsage   = 2
	exitParse   = 3 // the rules file does not parse
	exitVocab   = 4 // the rules parse but fail vocabulary checks
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a full command line and reports the process exit status.
// It is the testable entry point: main only binds it to os.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	switch args[0] {
	case "fmt":
		return cmdFmt(args[1:], stdout, stderr)
	case "check":
		return cmdCheck(args[1:], stdout, stderr)
	case "vet":
		return cmdVet(args[1:], stdout, stderr)
	case "eval":
		return cmdEval(args[1:], stdout, stderr)
	case "explain":
		return cmdExplain(args[1:], stdout, stderr)
	case "builtin":
		return cmdBuiltin(args[1:], stdout, stderr)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return exitOK
	default:
		fmt.Fprintf(stderr, "chameleon-rules: unknown command %q\n", args[0])
		return usage(stderr)
	}
}

func usage(w io.Writer) int {
	fmt.Fprint(w, `usage: chameleon-rules <command> [arguments]

commands:
  fmt     <rules.cham> [-w]            parse and pretty-print
  check   <rules.cham> [-param N=V]    parse and check the vocabulary
  vet     <rules.cham>|-builtin|-extended [-json] [-strict] [-param N=V]
                                       semantic static analysis (see docs/ANALYSIS.md)
  eval    <rules.cham> -profile p.json [-top K] [-min-potential B]
                                       offline suggestion report from a snapshot
  explain <rules.cham> -profile p.json [-context substr] [-fired]
                                       trace why rules fire or not
  builtin [-extended]                  print the shipped rule sets

exit codes:
  0  success
  1  runtime failure, or error-severity vet diagnostics
  2  usage error
  3  the rules file does not parse
  4  the rules parse but fail vocabulary checks
`)
	return exitUsage
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "chameleon-rules:", err)
	return exitFailure
}

// paramFlags collects repeated -param NAME=VALUE flags on top of the
// default environment.
type paramFlags struct{ params rules.Params }

func (p *paramFlags) String() string { return fmt.Sprint(p.params) }

func (p *paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p.params[strings.TrimSpace(name)] = v
	return nil
}

func newParams() *paramFlags {
	p := &paramFlags{params: rules.Params{}}
	for k, v := range rules.DefaultParams {
		p.params[k] = v
	}
	return p
}

// splitFile accepts the rules file either as the leading argument
// ("eval rules.cham -profile p.json") or as the trailing positional after
// flags ("eval -profile p.json rules.cham"); Go's flag package handles the
// latter natively, so only the leading form needs peeling off.
func splitFile(args []string) (file string, rest []string) {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return args[0], args[1:]
	}
	return "", args
}

// loadRules reads and parses a rules file, reporting the exit status that
// distinguishes unreadable files (1) from files that do not parse (3).
func loadRules(path string, stderr io.Writer) (*rules.RuleSet, int) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fail(stderr, err)
	}
	rs, err := rules.Parse(string(src))
	if err != nil {
		fmt.Fprintln(stderr, "chameleon-rules:", err)
		return nil, exitParse
	}
	return rs, exitOK
}

func cmdFmt(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fmt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	write := fs.Bool("w", false, "write the formatted output back to the file")
	path, rest := splitFile(args)
	if err := fs.Parse(rest); err != nil {
		return exitUsage
	}
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(stderr, "chameleon-rules: fmt: expected one rules file")
		return exitUsage
	}
	rs, status := loadRules(path, stderr)
	if status != exitOK {
		return status
	}
	out := rules.Print(rs)
	if *write {
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			return fail(stderr, err)
		}
		return exitOK
	}
	fmt.Fprint(stdout, out)
	return exitOK
}

func cmdCheck(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	if err := fs.Parse(rest); err != nil {
		return exitUsage
	}
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(stderr, "chameleon-rules: check: expected one rules file")
		return exitUsage
	}
	rs, status := loadRules(path, stderr)
	if status != exitOK {
		return status
	}
	if errs := rules.Check(rs, params.params); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(stderr, e)
		}
		return exitVocab
	}
	// Semantic advisories ride along on stderr but do not affect the
	// status: check answers "is the vocabulary valid", vet answers "do the
	// rules make sense" and owns the failing exit codes.
	for _, d := range rules.Vet(rs, params.params) {
		fmt.Fprintln(stderr, d)
	}
	fmt.Fprintf(stdout, "%d rules OK; parameters referenced: %v\n", len(rs.Rules), rules.ParamsOf(rs))
	return exitOK
}

// cmdVet runs the semantic analyzer over a rules file or a shipped set.
// Vocabulary errors gate the analysis: Vet's verdicts assume every name
// resolves, so an unknown op or unbound parameter exits 4 before vetting.
func cmdVet(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	strict := fs.Bool("strict", false, "exit 1 on warnings, not only errors")
	builtin := fs.Bool("builtin", false, "vet the shipped builtin rule set")
	extended := fs.Bool("extended", false, "vet the shipped extended rule set")
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	if err := fs.Parse(rest); err != nil {
		return exitUsage
	}
	if path == "" {
		path = fs.Arg(0)
	}
	var rs *rules.RuleSet
	var label string
	sources := 0
	for _, set := range []bool{*builtin, *extended, path != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		fmt.Fprintln(stderr, "chameleon-rules: vet: choose one of a rules file, -builtin, or -extended")
		return exitUsage
	case *builtin:
		rs, label = rules.Builtin(), "builtin"
	case *extended:
		rs, label = rules.Extended(), "extended"
	case path != "":
		var status int
		rs, status = loadRules(path, stderr)
		if status != exitOK {
			return status
		}
		label = path
	default:
		fmt.Fprintln(stderr, "chameleon-rules: vet: expected a rules file (or -builtin / -extended)")
		return exitUsage
	}
	if errs := rules.Check(rs, params.params); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(stderr, e)
		}
		return exitVocab
	}
	diags := rules.Vet(rs, params.params)
	errors, warnings := 0, 0
	for _, d := range diags {
		if d.Severity == rules.SevError {
			errors++
		} else {
			warnings++
		}
	}
	if *jsonOut {
		if diags == nil {
			diags = []rules.Diagnostic{} // always an array, never null
		}
		b, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stdout, "%s: %d rules: %d errors, %d warnings\n",
			label, len(rs.Rules), errors, warnings)
	}
	if errors > 0 || (*strict && warnings > 0) {
		return exitFailure
	}
	return exitOK
}

func cmdEval(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profilePath := fs.String("profile", "", "profile snapshot JSON (from chameleon -profile-out)")
	top := fs.Int("top", 10, "show the top-K contexts")
	minPotential := fs.Int64("min-potential", 0, "suppress space replacements below this potential (bytes; -1 disables)")
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	if err := fs.Parse(rest); err != nil {
		return exitUsage
	}
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" || *profilePath == "" {
		fmt.Fprintln(stderr, "chameleon-rules: eval: expected a rules file and -profile snapshot")
		return exitUsage
	}
	rs, status := loadRules(path, stderr)
	if status != exitOK {
		return status
	}
	if errs := rules.Check(rs, params.params); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(stderr, e)
		}
		return exitVocab
	}
	// Semantic findings (shadowed or never-firing rules skew the
	// suggestions) reach the user through the report itself: Advise runs
	// Vet and Format leads with the diagnostics.
	f, err := os.Open(*profilePath)
	if err != nil {
		return fail(stderr, err)
	}
	defer f.Close()
	profiles, err := profiler.ReadProfiles(f)
	if err != nil {
		return fail(stderr, err)
	}
	rep, err := advisor.Advise(profiles, advisor.Options{
		Rules:        rs,
		Params:       params.params,
		Top:          *top,
		MinPotential: *minPotential,
	})
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprint(stdout, rep.Format())
	return exitOK
}

// cmdExplain traces rule evaluation against a profiled context: why each
// rule fired or did not.
func cmdExplain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profilePath := fs.String("profile", "", "profile snapshot JSON (from chameleon -profile-out)")
	ctxSubstr := fs.String("context", "", "substring selecting the context(s) to explain")
	firedOnly := fs.Bool("fired", false, "show only rules that fired")
	params := newParams()
	fs.Var(params, "param", "bind a rule parameter NAME=VALUE (repeatable)")
	path, rest := splitFile(args)
	if err := fs.Parse(rest); err != nil {
		return exitUsage
	}
	if path == "" {
		path = fs.Arg(0)
	}
	if path == "" || *profilePath == "" {
		fmt.Fprintln(stderr, "chameleon-rules: explain: expected a rules file and -profile snapshot")
		return exitUsage
	}
	rs, status := loadRules(path, stderr)
	if status != exitOK {
		return status
	}
	f, err := os.Open(*profilePath)
	if err != nil {
		return fail(stderr, err)
	}
	defer f.Close()
	profiles, err := profiler.ReadProfiles(f)
	if err != nil {
		return fail(stderr, err)
	}
	opts := rules.EvalOptions{Params: params.params}
	shown := 0
	for _, p := range profiles {
		if *ctxSubstr != "" && !strings.Contains(p.Context.String(), *ctxSubstr) {
			continue
		}
		fmt.Fprintf(stdout, "context: %s (declared %s, avgMaxSize %.1f, potential %d)\n",
			p.Context, p.Declared, p.MaxSizeAvg, p.Potential())
		for _, r := range rs.Rules {
			ex := rules.Explain(r, p, opts)
			if *firedOnly && !ex.Fired {
				continue
			}
			if !ex.SrcMatched && *ctxSubstr == "" {
				continue // keep unfiltered output readable
			}
			fmt.Fprint(stdout, ex.String())
		}
		fmt.Fprintln(stdout)
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(stderr, "chameleon-rules: no contexts matched")
	}
	return exitOK
}

func cmdBuiltin(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("builtin", flag.ContinueOnError)
	fs.SetOutput(stderr)
	extended := fs.Bool("extended", false, "include the extension rules (SinglyLinkedList, open addressing)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *extended {
		fmt.Fprint(stdout, rules.Print(rules.Extended()))
		return exitOK
	}
	fmt.Fprint(stdout, rules.Print(rules.Builtin()))
	return exitOK
}
