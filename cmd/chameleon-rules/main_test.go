package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/rules"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata")

const buggyFile = "examples/badrules/buggy.cham"

// runCLI invokes the command from the repository root (paths in goldens and
// diagnostics stay stable) and returns the exit status with both streams.
func runCLI(t *testing.T, args ...string) (status int, stdout, stderr string) {
	t.Helper()
	t.Chdir("../..")
	var out, errb bytes.Buffer
	status = run(args, &out, &errb)
	return status, out.String(), errb.String()
}

func checkGolden(t *testing.T, got, goldenPath string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output does not match %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// The buggy example demonstrates every diagnostic; its text rendering is the
// user-facing contract.
func TestVetBuggyGoldenText(t *testing.T) {
	status, stdout, _ := runCLI(t, "vet", buggyFile)
	if status != exitFailure {
		t.Errorf("status = %d, want %d (the file has error-severity findings)", status, exitFailure)
	}
	checkGolden(t, stdout, filepath.Join("cmd/chameleon-rules/testdata", "vet_buggy.txt"))
	// One diagnostic per rule, one lint kind each.
	for _, code := range []string{
		rules.CodeUnsatisfiable, rules.CodeAlwaysTrue, rules.CodeShadowed,
		rules.CodeVacuousOp, rules.CodeSelfReplace, rules.CodeZeroDivisor,
		rules.CodeStableUnread, rules.CodeStableConflict,
	} {
		if !strings.Contains(stdout, "["+code+"]") {
			t.Errorf("text output missing [%s]", code)
		}
	}
	if !strings.Contains(stdout, "8 rules: 2 errors, 6 warnings") {
		t.Errorf("summary line missing or wrong:\n%s", stdout)
	}
}

func TestVetBuggyGoldenJSON(t *testing.T) {
	status, stdout, _ := runCLI(t, "vet", "-json", buggyFile)
	if status != exitFailure {
		t.Errorf("status = %d, want %d", status, exitFailure)
	}
	checkGolden(t, stdout, filepath.Join("cmd/chameleon-rules/testdata", "vet_buggy.json"))
	var diags []rules.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v", err)
	}
	if len(diags) != 8 {
		t.Errorf("decoded %d diagnostics, want 8", len(diags))
	}
}

// The shipped rule sets must vet clean through the CLI path too.
func TestVetShippedSets(t *testing.T) {
	for _, fl := range []string{"-builtin", "-extended"} {
		status, stdout, stderr := runCLI(t, "vet", fl)
		if status != exitOK {
			t.Errorf("vet %s: status = %d, stderr: %s", fl, status, stderr)
		}
		if !strings.Contains(stdout, "0 errors, 0 warnings") {
			t.Errorf("vet %s: summary = %q, want clean", fl, stdout)
		}
	}
}

// -json must emit an array even when there is nothing to report.
func TestVetCleanJSONIsEmptyArray(t *testing.T) {
	status, stdout, _ := runCLI(t, "vet", "-json", "-builtin")
	if status != exitOK {
		t.Errorf("status = %d, want 0", status)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout)
	}
}

// -strict promotes warnings to a failing status; without it warning-only
// files pass.
func TestVetStrict(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "warn.cham")
	if err := os.WriteFile(path, []byte("ArrayList : maxSize > Y -> ArrayList\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := runCLI(t, "vet", path); status != exitOK {
		t.Errorf("warnings without -strict: status = %d, want 0", status)
	}
	if status, _, _ := runCLI(t, "vet", "-strict", path); status != exitFailure {
		t.Errorf("warnings with -strict: status = %d, want 1", status)
	}
}

// check owns the vocabulary; the buggy file is vocabulary-clean, so check
// passes and merely relays the vet advisories on stderr.
func TestCheckBuggyPassesWithAdvisories(t *testing.T) {
	status, stdout, stderr := runCLI(t, "check", buggyFile)
	if status != exitOK {
		t.Errorf("status = %d, want 0 (vocabulary is valid)", status)
	}
	if !strings.Contains(stdout, "8 rules OK") {
		t.Errorf("stdout = %q, want the OK line", stdout)
	}
	if !strings.Contains(stderr, "["+rules.CodeUnsatisfiable+"]") {
		t.Errorf("stderr should carry the vet advisories, got: %q", stderr)
	}
}

func TestExitCodeContract(t *testing.T) {
	dir := t.TempDir()
	noParse := filepath.Join(dir, "noparse.cham")
	if err := os.WriteFile(noParse, []byte("this is not : a rule ->"), 0o644); err != nil {
		t.Fatal(err)
	}
	badVocab := filepath.Join(dir, "vocab.cham")
	if err := os.WriteFile(badVocab, []byte("ArrayList : #frob > X -> LinkedList\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no arguments", nil, exitUsage},
		{"unknown command", []string{"frobnicate"}, exitUsage},
		{"vet without input", []string{"vet"}, exitUsage},
		{"vet conflicting inputs", []string{"vet", "-builtin", "-extended"}, exitUsage},
		{"help", []string{"help"}, exitOK},
		{"missing file", []string{"vet", filepath.Join(dir, "absent.cham")}, exitFailure},
		{"parse error", []string{"vet", noParse}, exitParse},
		{"parse error via check", []string{"check", noParse}, exitParse},
		{"vocabulary error", []string{"vet", badVocab}, exitVocab},
		{"vocabulary error via check", []string{"check", badVocab}, exitVocab},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, _, _ := runCLI(t, c.args...)
			if status != c.want {
				t.Errorf("run(%v) = %d, want %d", c.args, status, c.want)
			}
		})
	}
}

// fmt over the buggy file must round-trip: its output re-parses and prints
// identically.
func TestFmtRoundTrip(t *testing.T) {
	status, stdout, stderr := runCLI(t, "fmt", buggyFile)
	if status != exitOK {
		t.Fatalf("status = %d, stderr: %s", status, stderr)
	}
	rs, err := rules.Parse(stdout)
	if err != nil {
		t.Fatalf("fmt output does not re-parse: %v", err)
	}
	if rules.Print(rs) != stdout {
		t.Error("fmt output is not a fixed point of Print")
	}
}
