package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/chaos"
)

func TestUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-bogus"}, &out, &errb); got != exitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", got, exitUsage)
	}
	if got := run([]string{"stray"}, &out, &errb); got != exitUsage {
		t.Fatalf("stray arg: exit %d, want %d", got, exitUsage)
	}
	if got := run([]string{"-seeds", "0"}, &out, &errb); got != exitUsage {
		t.Fatalf("-seeds 0: exit %d, want %d", got, exitUsage)
	}
}

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-list"}, &out, &errb); got != exitOK {
		t.Fatalf("exit %d, stderr %s", got, errb.String())
	}
	for _, want := range []string{"phaseshift", "fleet", "rule-panic", "ingest-delay", chaos.AuditNoWedge} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestSoakCleanTree: a small soak over two scenarios passes on an
// unbroken tree and reports PASS.
func TestSoakCleanTree(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scenarios", "phaseshift,fleet", "-seeds", "2", "-out", t.TempDir()}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("no PASS line:\n%s", out.String())
	}
}

// TestReplayKnownGood: a generated schedule with no recorded violation
// replays clean and exits 0 — the CI replay-smoke path.
func TestReplayKnownGood(t *testing.T) {
	s := chaos.Generate(3, chaos.ScenarioServer, 5)
	path := filepath.Join(t.TempDir(), "good.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-replay", path}, &out, &errb); code != exitOK {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REPLAY PASS") {
		t.Fatalf("no REPLAY PASS:\n%s", out.String())
	}
}

// TestReplayMismatchExits3: a schedule claiming a violation the tree no
// longer exhibits must exit 3 — stale reproducers fail loudly.
func TestReplayMismatchExits3(t *testing.T) {
	s := chaos.Generate(3, chaos.ScenarioServer, 5)
	s.Violation = chaos.AuditNoWedge // lie: the clean tree will not wedge
	path := filepath.Join(t.TempDir(), "stale.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-replay", path}, &out, &errb); code != exitAssert {
		t.Fatalf("exit %d, want %d\n%s", code, exitAssert, out.String())
	}
	if !strings.Contains(out.String(), "REPLAY FAIL") {
		t.Fatalf("no REPLAY FAIL:\n%s", out.String())
	}
}

func TestReplayUnreadableExits1(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.json")}, &out, &errb); code != exitFailure {
		t.Fatalf("exit %d, want %d", code, exitFailure)
	}
	// Malformed JSON is also a runtime failure, not a crash.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-replay", bad}, &out, &errb); code != exitFailure {
		t.Fatalf("malformed: exit %d, want %d", code, exitFailure)
	}
}

// TestJSONOutput: -json emits one parseable object per run line.
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-scenarios", "contextstorm", "-seeds", "1", "-json", "-out", t.TempDir()}, &out, &errb)
	if code != exitOK {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	first := strings.SplitN(out.String(), "\n", 2)[0]
	if !strings.HasPrefix(first, "{") || !strings.Contains(first, `"checksum"`) {
		t.Fatalf("first line is not a result object: %s", first)
	}
}
