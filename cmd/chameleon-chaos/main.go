// Command chameleon-chaos is the deterministic fault-schedule
// orchestrator: it generates seeded pseudo-random schedules of fault
// events over every injection seam in the runtime (internal/faults),
// runs the registered workload scenarios under each schedule, and
// audits system invariants — checksum unchanged vs a fault-free
// reference, accounting conservation, no-wedge liveness, panic
// containment (docs/ROBUSTNESS.md).
//
// When a schedule trips an auditor, the failing schedule is shrunk by
// delta debugging to a minimal reproducer and written as replayable
// JSON; -replay re-executes a reproducer and verifies it still trips
// the same auditor, deterministically.
//
//	chameleon-chaos -seeds 32                      # full soak, all scenarios
//	chameleon-chaos -scenarios fleet,server -seeds 8
//	chameleon-chaos -seeds 8 -out artifacts/       # reproducers land here
//	chameleon-chaos -replay repro-fleet-7.json     # re-run a reproducer
//	chameleon-chaos -list                          # scenarios, seams, auditors
//
// Exit codes form a contract scripts can dispatch on:
//
//	0  success: every run passed every auditor (or -replay reproduced)
//	1  runtime failure (unreadable schedule, unwritable artifact)
//	2  usage error
//	3  invariant violation found (soak), or -replay no longer reproduces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"chameleon/internal/chaos"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitAssert  = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes a full command line and reports the process exit status.
// It is the testable entry point: main only binds it to os.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chameleon-chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Uint64("seeds", 8, "seeds to run per scenario (1..N)")
	scenarios := fs.String("scenarios", "", "comma-separated scenarios (default: all)")
	events := fs.Int("events", 6, "fault events per generated schedule")
	out := fs.String("out", ".", "directory for shrunk reproducer artifacts")
	noShrink := fs.Bool("no-shrink", false, "report violations without shrinking")
	replay := fs.String("replay", "", "re-run this reproducer file and verify it still trips its auditor")
	list := fs.Bool("list", false, "print scenarios, seams and auditors, then exit")
	asJSON := fs.Bool("json", false, "emit one JSON result object per run")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "chameleon-chaos: unexpected arguments: %s\n", strings.Join(fs.Args(), " "))
		return exitUsage
	}

	if *list {
		fmt.Fprintf(stdout, "scenarios: %s\n", strings.Join(chaos.Scenarios(), " "))
		fmt.Fprintf(stdout, "seams:     %s\n", strings.Join(chaos.Seams(), " "))
		fmt.Fprintf(stdout, "auditors:  %s\n", strings.Join(chaos.Auditors(), " "))
		return exitOK
	}

	h := chaos.NewHarness()

	if *replay != "" {
		return runReplay(h, *replay, *asJSON, stdout, stderr)
	}

	scs := chaos.Scenarios()
	if *scenarios != "" {
		scs = strings.Split(*scenarios, ",")
	}
	if *seeds < 1 || *events < 1 {
		fmt.Fprintln(stderr, "chameleon-chaos: -seeds and -events must be >= 1")
		return exitUsage
	}

	violations := 0
	for _, sc := range scs {
		sc = strings.TrimSpace(sc)
		for seed := uint64(1); seed <= *seeds; seed++ {
			s := chaos.Generate(seed, sc, *events)
			res, err := h.Run(s)
			if err != nil {
				fmt.Fprintf(stderr, "chameleon-chaos: %s seed %d: %v\n", sc, seed, err)
				return exitUsage
			}
			printResult(stdout, res, *asJSON)
			if len(res.Violations) == 0 {
				continue
			}
			violations++
			auditor := res.Outcome()
			repro := s
			if !*noShrink {
				repro = h.Shrink(s, auditor)
				fmt.Fprintf(stdout, "  shrunk: %d -> %d event(s)\n", len(s.Events), len(repro.Events))
			} else {
				repro.Violation = auditor
			}
			path := filepath.Join(*out, fmt.Sprintf("repro-%s-%d.json", sc, seed))
			if err := repro.WriteFile(path); err != nil {
				fmt.Fprintf(stderr, "chameleon-chaos: writing reproducer: %v\n", err)
				return exitFailure
			}
			fmt.Fprintf(stdout, "  reproducer: %s (replay with -replay %s)\n", path, path)
		}
	}
	if violations > 0 {
		fmt.Fprintf(stdout, "FAIL: %d schedule(s) violated invariants\n", violations)
		return exitAssert
	}
	fmt.Fprintf(stdout, "PASS: %d scenario(s) x %d seed(s), all auditors clean\n", len(scs), *seeds)
	return exitOK
}

// runReplay re-executes a reproducer and checks that it still trips the
// auditor recorded in its Violation field. A reproducer whose Violation
// is empty (a known-good schedule) must instead pass every auditor —
// that is the CI replay-smoke mode.
func runReplay(h *chaos.Harness, path string, asJSON bool, stdout, stderr io.Writer) int {
	s, err := chaos.ReadScheduleFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "chameleon-chaos: %v\n", err)
		return exitFailure
	}
	res, err := h.Run(s)
	if err != nil {
		fmt.Fprintf(stderr, "chameleon-chaos: %v\n", err)
		return exitFailure
	}
	printResult(stdout, res, asJSON)
	got := res.Outcome()
	if got == s.Violation {
		if s.Violation == "" {
			fmt.Fprintf(stdout, "REPLAY PASS: known-good schedule stays clean\n")
		} else {
			fmt.Fprintf(stdout, "REPLAY PASS: reproduces %q deterministically\n", s.Violation)
		}
		return exitOK
	}
	fmt.Fprintf(stdout, "REPLAY FAIL: recorded violation %q, this run produced %q\n", s.Violation, got)
	return exitAssert
}

// printResult renders one run: scenario, seed, per-seam fire tallies and
// the verdict, or the full result as a JSON object with -json.
func printResult(w io.Writer, res *chaos.Result, asJSON bool) {
	if asJSON {
		b, _ := json.Marshal(res)
		fmt.Fprintln(w, string(b))
		return
	}
	verdict := "ok"
	if len(res.Violations) > 0 {
		verdict = "VIOLATION " + res.Outcome()
		for _, v := range res.Violations {
			verdict += fmt.Sprintf(" [%s: %s]", v.Auditor, v.Detail)
		}
	}
	fmt.Fprintf(w, "%-12s seed %-3d events %d  fires %s  %s\n",
		res.Schedule.Scenario, res.Schedule.Seed, len(res.Schedule.Events), fireSummary(res), verdict)
}

// fireSummary compacts the per-seam tallies into seam:fires/consults
// pairs, skipping seams that were never consulted.
func fireSummary(res *chaos.Result) string {
	var parts []string
	for _, seam := range chaos.Seams() {
		f, ok := res.Fires[seam]
		if !ok || f.Consults == 0 {
			continue
		}
		if f.Fires > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", seam, f.Fires))
		}
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, " ")
}
