// Command chameleon-apply is the ahead-of-time specializer: it joins a
// profile/decision snapshot (chameleon -profile-out) against the
// allocation sites of a Go program (the chameleon-sites analysis,
// re-run in process) and rewrites every safe, decided site — fully
// decided sites move to the concrete NewFixed* constructors and stop
// profiling; capacity-only decisions keep their profiled constructor
// with an updated Cap. Unsafe, unlabeled, forced, and undecided sites
// are left untouched and reported with the reason (docs/SPECIALIZE.md).
//
//	chameleon-apply -profile p.json ./...            # classify, print plan
//	chameleon-apply -profile p.json -diff ./...      # print the unified diff
//	chameleon-apply -profile p.json -write ./...     # rewrite in place
//	chameleon-apply -profile p.json -verify pmd -write ./...
//	                                                 # rewrite only if the
//	                                                 # rewritten tree's checksum
//	                                                 # matches the reference run
//
// Exit codes form a contract scripts can dispatch on, aligned with
// chameleon-sites and chameleon-rules:
//
//	0  success
//	1  runtime failure, stale snapshot contexts, or a verify mismatch
//	2  usage error
//	3  an input does not load (packages, snapshot, rules, manifest)
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"chameleon/internal/analysis"
	"chameleon/internal/apply"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
)

const (
	exitOK       = 0
	exitFailure  = 1 // runtime failure, stale snapshot, verify mismatch
	exitUsage    = 2
	exitBadInput = 3 // packages, snapshot, rules, or manifest fail to load
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes a full command line and reports the process exit status.
// It is the testable entry point: main only binds it to os.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chameleon-apply", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "directory to resolve package patterns in")
	profilePath := fs.String("profile", "", "decision/profile snapshot to apply (required)")
	rulesFile := fs.String("rules", "", "rule file the advisor evaluates")
	builtin := fs.Bool("builtin", false, "use the shipped builtin rule set (the default)")
	extended := fs.Bool("extended", false, "use the shipped extended rule set")
	minPotential := fs.Int64("min-potential", -1, "advisor space-potential gate in bytes; -1 disables it (source rewrites are churn-motivated too), 0 selects the advisor default")
	manifestPath := fs.String("manifest", "", "gate rewrites against a chameleon-sites manifest; divergence is exit 3")
	diff := fs.Bool("diff", false, "print the rewrite as a unified diff")
	write := fs.Bool("write", false, "write rewritten files in place (temp+rename)")
	verify := fs.String("verify", "", "run this workload against the rewritten tree and require its checksum to match the reference run")
	scale := fs.Int("scale", 0, "workload scale for -verify (0 = the workload default)")
	all := fs.Bool("all", false, "list skipped sites too, with reasons")
	allowStale := fs.Bool("allow-stale", false, "tolerate snapshot contexts that join no site (default: exit 1)")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *profilePath == "" {
		fmt.Fprintln(stderr, "chameleon-apply: -profile is required")
		usage(stderr)
		return exitUsage
	}

	opts := apply.Options{Dir: *dir, Patterns: patterns, MinPotential: *minPotential}

	sources := 0
	for _, set := range []bool{*builtin, *extended, *rulesFile != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		fmt.Fprintln(stderr, "chameleon-apply: choose one of -rules, -builtin, or -extended")
		return exitUsage
	case *extended:
		opts.Rules = rules.Extended()
	case *rulesFile != "":
		src, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-apply:", err)
			return exitBadInput
		}
		rs, err := rules.Parse(string(src))
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-apply:", err)
			return exitBadInput
		}
		opts.Rules = rs
	default: // -builtin, or nothing: the builtin set
		opts.Rules = rules.Builtin()
	}

	f, err := os.Open(*profilePath)
	if err != nil {
		fmt.Fprintln(stderr, "chameleon-apply:", err)
		return exitBadInput
	}
	profiles, err := profiler.ReadProfiles(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "chameleon-apply:", err)
		return exitBadInput
	}
	opts.Profiles = profiles

	if *manifestPath != "" {
		m, err := analysis.ReadManifestFile(*manifestPath)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-apply:", err)
			return exitBadInput
		}
		opts.Manifest = m
	}

	res, err := apply.Run(opts)
	if err != nil {
		if le, ok := err.(*analysis.LoadError); ok {
			for _, p := range le.Problems {
				fmt.Fprintln(stderr, "chameleon-apply:", p)
			}
			return exitBadInput
		}
		fmt.Fprintln(stderr, "chameleon-apply:", err)
		var mm *apply.ManifestMismatchError
		if errors.As(err, &mm) {
			return exitBadInput
		}
		return exitFailure
	}

	// A decided context that joins no site means the snapshot and the
	// tree disagree — rewriting against it would apply someone else's
	// decisions. Refuse before any output side effect.
	if len(res.Stale) > 0 {
		for _, label := range res.Stale {
			fmt.Fprintf(stderr, "chameleon-apply: stale snapshot context %s joins no allocation site\n", label)
		}
		if !*allowStale {
			fmt.Fprintln(stderr, "chameleon-apply: refusing to rewrite from a stale snapshot (-allow-stale to override)")
			return exitFailure
		}
	}

	if *verify != "" {
		v, err := apply.Verify(*dir, res.Files, *verify, *scale)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-apply:", err)
			return exitFailure
		}
		fmt.Fprintln(stdout, v)
		if !v.OK() {
			fmt.Fprintln(stderr, "chameleon-apply: rewritten tree diverges from the reference run; not writing")
			return exitFailure
		}
	}

	switch {
	case *diff:
		fmt.Fprint(stdout, apply.Diff(*dir, res.Files))
	case !*write:
		listDecisions(stdout, res, *all)
	}
	if *write {
		if err := apply.WriteFiles(res.Files); err != nil {
			fmt.Fprintln(stderr, "chameleon-apply:", err)
			return exitFailure
		}
	}
	if !*diff {
		fmt.Fprintf(stdout, "%d sites: %d replaced, %d retuned, %d skipped; %d files rewritten\n",
			len(res.Sites), res.Replaced(), res.Retuned(), res.Skipped(), len(res.Files))
	}
	return exitOK
}

// listDecisions prints one line per rewrite decision (and per skip with
// -all), in source order.
func listDecisions(w io.Writer, res *apply.Result, all bool) {
	for _, d := range res.Sites {
		if !d.Status.Rewrites() && !all {
			continue
		}
		fmt.Fprintf(w, "%s: %s: %s\n", d.Site.ID, d.Status, d.Reason)
	}
}

func usage(w io.Writer) int {
	fmt.Fprint(w, `usage: chameleon-apply -profile F [flags] [packages]

Rewrites safe, decided allocation sites ahead of time from a
profile/decision snapshot: replacements move to the concrete NewFixed*
constructors (profiling removed), capacity decisions update Cap in place
(docs/SPECIALIZE.md).

flags:
  -dir D            directory to resolve package patterns in (default ".")
  -profile F        decision/profile snapshot to apply (required)
  -rules F          rule file the advisor evaluates
  -builtin          use the shipped builtin rule set (the default)
  -extended         use the shipped extended rule set
  -min-potential N  advisor space gate in bytes; -1 disables (default), 0 = advisor default
  -manifest F       gate rewrites against a chameleon-sites manifest
  -diff             print the rewrite as a unified diff
  -write            write rewritten files in place (temp+rename)
  -verify W         require the rewritten tree to reproduce workload W's checksum
  -scale N          workload scale for -verify (0 = workload default)
  -all              list skipped sites too, with reasons
  -allow-stale      tolerate snapshot contexts that join no site

exit codes:
  0  success
  1  runtime failure, stale snapshot contexts, or a verify mismatch
  2  usage error
  3  an input does not load (packages, snapshot, rules file, manifest)
`)
	return exitUsage
}
