package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/spec"
	"chameleon/internal/workloads"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// writeSnapshot profiles one workload in process and writes the v2
// snapshot file the CLI consumes.
func writeSnapshot(t *testing.T, workload string, scale int) string {
	t.Helper()
	sp, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	prof := profiler.New()
	h := heap.New(heap.Config{GCThreshold: 1 << 30, Observer: prof, KeepSnapshots: true, KeepContexts: true})
	rt := collections.NewRuntime(collections.Config{
		Heap: h, Profiler: prof, Contexts: alloctx.NewTable(), Mode: alloctx.Static,
	})
	sp.Run(rt, workloads.Baseline, scale)
	path := filepath.Join(t.TempDir(), workload+".json")
	if err := profiler.WriteProfilesFile(path, prof.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeBogusSnapshot fabricates a snapshot whose decided context was
// interned against a different tree — the "wrong contextKey generation"
// case: the labels (and so the keys) join nothing in this one.
func writeBogusSnapshot(t *testing.T) string {
	t.Helper()
	tab := alloctx.NewTable()
	prof := profiler.New()
	ctx := tab.Static("gone.Package.fn:10;gone.Main.run:20")
	for i := 0; i < 4; i++ {
		in := prof.OnAlloc(ctx, spec.KindHashMap, spec.KindHashMap, 16)
		for j := 0; j < 4; j++ {
			in.Record(spec.Put)
			in.NoteSize(j + 1)
		}
		prof.OnDeath(in)
	}
	path := filepath.Join(t.TempDir(), "bogus.json")
	if err := profiler.WriteProfilesFile(path, prof.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Fatalf("no -profile: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-no-such-flag"); code != exitUsage {
		t.Fatalf("unknown flag: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-profile", "p.json", "-builtin", "-extended"); code != exitUsage {
		t.Fatalf("two rule sources: exit %d, want %d", code, exitUsage)
	}
}

func TestBadInputs(t *testing.T) {
	root := repoRoot(t)
	if code, _, _ := runCLI(t, "-profile", filepath.Join(t.TempDir(), "absent.json")); code != exitBadInput {
		t.Fatalf("missing snapshot: exit %d, want %d", code, exitBadInput)
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-profile", garbage); code != exitBadInput {
		t.Fatalf("corrupt snapshot: exit %d, want %d", code, exitBadInput)
	}
	snap := writeSnapshot(t, "pmd", 10)
	if code, _, _ := runCLI(t, "-dir", root, "-profile", snap, "./does/not/exist/..."); code != exitBadInput {
		t.Fatalf("bad pattern: exit %d, want %d", code, exitBadInput)
	}
}

func TestListAndDiff(t *testing.T) {
	root := repoRoot(t)
	snap := writeSnapshot(t, "pmd", 20)

	code, out, _ := runCLI(t, "-dir", root, "-profile", snap, "./internal/workloads")
	if code != exitOK {
		t.Fatalf("list run: exit %d", code)
	}
	if !strings.Contains(out, "replace: replace NewArrayList with NewFixedLazyArrayList") {
		t.Fatalf("listing lacks the replacement line:\n%s", out)
	}
	if !strings.Contains(out, "1 replaced") || !strings.Contains(out, "1 files rewritten") {
		t.Fatalf("summary line missing:\n%s", out)
	}

	code, out, _ = runCLI(t, "-dir", root, "-profile", snap, "-diff", "./internal/workloads")
	if code != exitOK {
		t.Fatalf("diff run: exit %d", code)
	}
	for _, want := range []string{
		"--- a/internal/workloads/pmd.go",
		"+++ b/internal/workloads/pmd.go",
		"NewFixedLazyArrayList",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff lacks %q:\n%s", want, out)
		}
	}
}

// A stale snapshot must fail with exit 1 before any rewrite — even when
// the caller asked for -verify and -write, the tree must stay untouched.
func TestStaleSnapshotFailsClosed(t *testing.T) {
	root := repoRoot(t)
	snap := writeBogusSnapshot(t)
	target := filepath.Join(root, "internal", "workloads", "pmd.go")
	before, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}

	code, _, errOut := runCLI(t, "-dir", root, "-profile", snap,
		"-verify", "pmd", "-scale", "5", "-write", "./internal/workloads")
	if code != exitFailure {
		t.Fatalf("stale snapshot: exit %d, want %d\n%s", code, exitFailure, errOut)
	}
	if !strings.Contains(errOut, "stale snapshot context") {
		t.Fatalf("stderr does not name the stale context:\n%s", errOut)
	}
	after, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("stale snapshot still rewrote the tree")
	}

	// -allow-stale downgrades the failure; with nothing decided joining
	// a site there is nothing to rewrite, and the run succeeds.
	code, _, _ = runCLI(t, "-dir", root, "-profile", snap, "-allow-stale", "./internal/workloads")
	if code != exitOK {
		t.Fatalf("-allow-stale: exit %d, want %d", code, exitOK)
	}
}
