package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chameleon/internal/alloctx"
	"chameleon/internal/fleet"
	"chameleon/internal/profiler"
	"chameleon/internal/spec"
)

// writeSnapshot builds a real profiler snapshot with n contexts and lands
// it at path.
func writeSnapshot(t *testing.T, path string, seed, n int) {
	t.Helper()
	tab := alloctx.NewTable()
	p := profiler.New()
	for i := 0; i < n; i++ {
		ctx := tab.Static(fmt.Sprintf("merge.Site%d:1;merge.Main:4", i))
		for k := 0; k < 4+seed; k++ {
			in := p.OnAlloc(ctx, spec.KindArrayList, spec.KindArrayList, 0)
			for j := 0; j <= i+k+seed; j++ {
				in.Record(spec.Add)
				in.NoteSize(j + 1)
			}
			p.OnDeath(in)
		}
	}
	if err := profiler.WriteProfilesFile(path, p.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestMergeModeWritesFleetSnapshot(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	writeSnapshot(t, a, 0, 3)
	writeSnapshot(t, b, 2, 5)
	out := filepath.Join(dir, "fleet.json")

	code, stdout, stderr := runCLI(t, "-o", out, a, b)
	if code != exitOK {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "merged: 5 context(s) from 2 source(s)") {
		t.Fatalf("summary missing:\n%s", stdout)
	}
	profiles, recErrs, err := profiler.ReadProfilesFileReport(out)
	if err != nil || len(recErrs) > 0 {
		t.Fatalf("fleet snapshot unreadable: %v %v", err, recErrs)
	}
	if len(profiles) != 5 {
		t.Fatalf("fleet snapshot has %d contexts, want 5", len(profiles))
	}
}

func TestMergeModeDegradesAndAccounts(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	writeSnapshot(t, good, 1, 4)
	// A torn copy of a DIFFERENT shard and an outright dead file.
	tornSrc := filepath.Join(dir, "tornsrc.json")
	writeSnapshot(t, tornSrc, 3, 4)
	raw, err := os.ReadFile(tornSrc)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	dead := filepath.Join(dir, "dead.json")
	if err := os.WriteFile(dead, []byte("nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}

	code, stdout, stderr := runCLI(t, "-json", good, torn, dead)
	if code != exitOK {
		t.Fatalf("exit %d\nstderr:\n%s", code, stderr)
	}
	var payload struct {
		Report fleet.MergeReport `json:"report"`
	}
	if err := json.Unmarshal([]byte(stdout), &payload); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if payload.Report.FailedSources != 1 || payload.Report.DroppedRecords == 0 {
		t.Fatalf("accounting wrong: %+v", payload.Report)
	}
	if !strings.Contains(stderr, "source degraded") {
		t.Fatalf("dead source not reported on stderr:\n%s", stderr)
	}
}

func TestMergeModeAllDead(t *testing.T) {
	dir := t.TempDir()
	dead := filepath.Join(dir, "dead.json")
	if err := os.WriteFile(dead, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, _ := runCLI(t, dead, filepath.Join(dir, "missing.json"))
	if code != exitFailure {
		t.Fatalf("exit %d, want %d", code, exitFailure)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Fatalf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-watch", t.TempDir(), "extra.json"); code != exitUsage {
		t.Fatalf("watch with args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "-bogus"); code != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, exitUsage)
	}
}

// TestWatchSoakAssertRecovery is the CLI face of the acceptance scenario:
// a watch directory with healthy, torn, flaky and outage sources, faults
// armed by -inject, run for a fixed number of rounds. -assert-recovery
// requires that a quarantine actually happened, healed, and that nothing
// ended wedged — and the final ledger lands on disk for the CI artifact.
func TestWatchSoakAssertRecovery(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, filepath.Join(dir, "src-good.json"), 0, 4)
	writeSnapshot(t, filepath.Join(dir, "src-torn.json"), 1, 4)
	writeSnapshot(t, filepath.Join(dir, "src-flaky.json"), 2, 6)
	writeSnapshot(t, filepath.Join(dir, "src-outage.json"), 3, 4)
	ledgerPath := filepath.Join(t.TempDir(), "ledger.json")

	code, stdout, stderr := runCLI(t,
		"-watch", dir, "-rounds", "12", "-interval", "1ms",
		"-inject", "-assert-recovery", "-ledger-out", ledgerPath)
	if code != exitOK {
		t.Fatalf("soak exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "recovery asserted") {
		t.Fatalf("assertion summary missing:\n%s", stderr)
	}

	raw, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	var ledger fleet.Ledger
	if err := json.Unmarshal(raw, &ledger); err != nil {
		t.Fatal(err)
	}
	if len(ledger.Sources) != 4 {
		t.Fatalf("ledger has %d sources, want 4", len(ledger.Sources))
	}
	byName := map[string]fleet.SourceHealth{}
	for _, s := range ledger.Sources {
		byName[s.Name] = s
	}
	if s := byName["src-outage.json"]; s.Quarantines == 0 || s.State != "healthy" {
		t.Fatalf("outage source did not quarantine and recover: %+v", s)
	}
	if s := byName["src-torn.json"]; s.RecordsDropped == 0 {
		t.Fatalf("torn source dropped nothing: %+v", s)
	}
	if s := byName["src-good.json"]; s.State != "healthy" || s.RecordsKept == 0 {
		t.Fatalf("good source harmed by its peers: %+v", s)
	}
}

// TestWatchAssertFailsWithoutFaults: with no faults armed nothing is ever
// quarantined, so -assert-recovery must fail loudly rather than pass
// vacuously.
func TestWatchAssertFailsWithoutFaults(t *testing.T) {
	dir := t.TempDir()
	writeSnapshot(t, filepath.Join(dir, "src-good.json"), 0, 3)
	code, _, stderr := runCLI(t,
		"-watch", dir, "-rounds", "3", "-interval", "1ms", "-redeliver", "-assert-recovery")
	if code != exitAssert {
		t.Fatalf("exit %d, want %d\nstderr:\n%s", code, exitAssert, stderr)
	}
}

func TestWatchBadDir(t *testing.T) {
	if code, _, _ := runCLI(t, "-watch", filepath.Join(t.TempDir(), "nope")); code != exitFailure {
		t.Fatalf("exit %d, want %d", code, exitFailure)
	}
}
