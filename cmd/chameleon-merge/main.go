// Command chameleon-merge is the fleet aggregation tool: it combines
// profile snapshots from many processes into one fleet profile
// (internal/fleet, docs/FLEET.md), and in -watch mode runs the
// self-healing ingest service that keeps doing so continuously —
// per-source health ledger, quarantine with doubling backoff, periodic
// re-advise, optional HTTP push endpoint.
//
//	chameleon-merge a.json b.json c.json            # merge, print report
//	chameleon-merge -o fleet.json *.json            # write the fleet snapshot
//	chameleon-merge -advise *.json                  # advisor over the aggregate
//	chameleon-merge -watch dir -interval 2s         # ingest service
//	chameleon-merge -watch dir -http :8377          # + push endpoint/ledger API
//	chameleon-merge -watch dir -rounds 20 -inject -assert-recovery
//	                                                # fault-injection soak (CI)
//
// Corrupt or torn inputs never abort a merge: damage degrades the source
// it came from, per record, and every drop is accounted in the report.
//
// Exit codes form a contract scripts can dispatch on:
//
//	0  success
//	1  runtime failure (unreadable directory, write failure, every source dead)
//	2  usage error
//	3  -assert-recovery failed: a source wedged in quarantine, recovery
//	   never happened, or the service stopped merging
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"chameleon/internal/advisor"
	"chameleon/internal/faults"
	"chameleon/internal/fleet"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
)

const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitAssert  = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes a full command line and reports the process exit status.
// It is the testable entry point: main only binds it to os.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chameleon-merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the merged fleet snapshot to this file (v2 format)")
	advise := fs.Bool("advise", false, "run the advisor over the merged profile and print the report")
	asJSON := fs.Bool("json", false, "emit the merge report (and advice with -advise) as JSON")
	top := fs.Int("top", 0, "limit the advisor report to the top-K contexts (0 = all)")
	rulesFile := fs.String("rules", "", "rule file for -advise (default: built-in Table 2 rules)")
	extended := fs.Bool("extended", false, "use the extended rule set for -advise")
	minEvidence := fs.Int64("min-evidence", 0, "per-source evidence needed to join skew detection (0 = default 8)")
	minConfidence := fs.Float64("min-confidence", 0, "cross-source agreement below which a context is conflicted (0 = default 0.7)")

	watch := fs.String("watch", "", "ingest service mode: watch this snapshot directory")
	interval := fs.Duration("interval", time.Second, "watch: seconds between ingest rounds")
	rounds := fs.Int("rounds", 0, "watch: stop after N rounds (0 = run until interrupted)")
	httpAddr := fs.String("http", "", "watch: serve POST /ingest/{source} and GET /ledger on this address")
	ledgerOut := fs.String("ledger-out", "", "watch: write the final health ledger as JSON to this file")
	failLimit := fs.Int("fail-limit", 0, "watch: consecutive hard failures before quarantine (0 = default 3)")
	backoff := fs.Int("backoff", 0, "watch: initial quarantine length in rounds, doubling per quarantine (0 = default 4)")
	stale := fs.Int("stale-rounds", 0, "watch: rounds without a fresh delivery before a source goes stale (0 = never)")
	redeliver := fs.Bool("redeliver", false, "watch: re-read sources every round even when unchanged")
	inject := fs.Bool("inject", false, "watch: arm fault hooks by source name (*torn*, *flaky*, *outage*); implies -redeliver")
	assertRecovery := fs.Bool("assert-recovery", false, "watch: exit 3 unless a quarantine happened, recovered, and no source ended wedged")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	mergeOpts := fleet.Options{MinSourceEvidence: *minEvidence, MinConfidence: *minConfidence}
	advOpts := advisor.Options{Top: *top}
	if *extended {
		advOpts.Rules = rules.Extended()
	}
	if *rulesFile != "" {
		src, err := os.ReadFile(*rulesFile)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		rs, err := rules.Parse(string(src))
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		advOpts.Rules = rs
	}

	if *watch != "" {
		if fs.NArg() > 0 {
			fmt.Fprintln(stderr, "chameleon-merge: -watch takes no snapshot arguments")
			return exitUsage
		}
		return runWatch(watchConfig{
			dir:            *watch,
			interval:       *interval,
			rounds:         *rounds,
			httpAddr:       *httpAddr,
			ledgerOut:      *ledgerOut,
			out:            *out,
			merge:          mergeOpts,
			advise:         advOpts,
			failLimit:      *failLimit,
			backoff:        *backoff,
			stale:          *stale,
			redeliver:      *redeliver || *inject,
			inject:         *inject,
			assertRecovery: *assertRecovery,
		}, stdout, stderr)
	}

	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "chameleon-merge: no snapshots given")
		usage(stderr)
		return exitUsage
	}
	return runMerge(fs.Args(), mergeOpts, advOpts, *out, *advise, *asJSON, stdout, stderr)
}

// runMerge is the one-shot mode: read every snapshot, merge, report.
func runMerge(paths []string, mergeOpts fleet.Options, advOpts advisor.Options, out string, advise, asJSON bool, stdout, stderr io.Writer) int {
	var sources []fleet.Source
	for _, path := range paths {
		s, err := fleet.ReadSourceFile(path)
		if err != nil {
			// Degrade, don't die: the source is merged as failed and the
			// report says why.
			fmt.Fprintf(stderr, "chameleon-merge: %s: %v (source degraded)\n", path, err)
		}
		sources = append(sources, s)
	}
	res := fleet.Merge(sources, mergeOpts)
	if res.Report.FailedSources == len(sources) {
		fmt.Fprintln(stderr, "chameleon-merge: every source failed; nothing to merge")
		return exitFailure
	}

	var rep *advisor.Report
	if advise {
		var err error
		if rep, err = res.Advise(advOpts); err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
	}
	if asJSON {
		payload := struct {
			Report      fleet.MergeReport             `json:"report"`
			Annotations map[string]advisor.Annotation `json:"annotations"`
			Advice      *advisor.Report               `json:"advice,omitempty"`
		}{res.Report, res.Annotations, rep}
		b, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		fmt.Fprintln(stdout, string(b))
	} else {
		fmt.Fprintf(stdout, "merged: %s\n", res.Report)
		for _, sr := range res.Report.Sources {
			line := fmt.Sprintf("  %-24s %d record(s)", sr.Name, sr.Records)
			if sr.Duplicates > 0 {
				line += fmt.Sprintf(", %d duplicate(s)", sr.Duplicates)
			}
			if sr.Dropped > 0 {
				line += fmt.Sprintf(", %d dropped", sr.Dropped)
			}
			if sr.Err != "" {
				line += " FAILED: " + sr.Err
			}
			fmt.Fprintln(stdout, line)
		}
		if len(res.Report.Conflicted) > 0 {
			fmt.Fprintf(stdout, "conflicted contexts (excluded from plans):\n")
			for _, ctx := range res.Report.Conflicted {
				fmt.Fprintf(stdout, "  %s\n    %s\n", ctx, res.Annotations[ctx])
			}
		}
		if rep != nil {
			fmt.Fprintf(stdout, "\nfleet advice:\n%s", rep.Format())
		}
	}

	if out != "" {
		if err := profiler.WriteProfilesFile(out, res.Profiles); err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		fmt.Fprintf(stderr, "chameleon-merge: fleet snapshot written to %s\n", out)
	}
	return exitOK
}

type watchConfig struct {
	dir            string
	interval       time.Duration
	rounds         int
	httpAddr       string
	ledgerOut      string
	out            string
	merge          fleet.Options
	advise         advisor.Options
	failLimit      int
	backoff        int
	stale          int
	redeliver      bool
	inject         bool
	assertRecovery bool
}

// runWatch is the ingest-service mode.
func runWatch(cfg watchConfig, stdout, stderr io.Writer) int {
	if info, err := os.Stat(cfg.dir); err != nil || !info.IsDir() {
		fmt.Fprintf(stderr, "chameleon-merge: -watch %s: not a directory\n", cfg.dir)
		return exitFailure
	}
	if cfg.inject {
		armInjection(cfg.dir, stderr)
		defer faults.Disarm()
	}

	w := fleet.NewWatcher(fleet.IngestOptions{
		Dir:          cfg.dir,
		Merge:        cfg.merge,
		Advise:       cfg.advise,
		FailLimit:    cfg.failLimit,
		BackoffTicks: cfg.backoff,
		StaleTicks:   cfg.stale,
		Redeliver:    cfg.redeliver,
	})

	var srv *http.Server
	if cfg.httpAddr != "" {
		ln, err := net.Listen("tcp", cfg.httpAddr)
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		srv = &http.Server{Handler: w.Handler()}
		go func() { _ = srv.Serve(ln) }()
		fmt.Fprintf(stderr, "chameleon-merge: ingest endpoint on %s (POST /ingest/{source}, GET /ledger)\n", ln.Addr())
		defer srv.Close()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)

	// Soak bookkeeping for -assert-recovery.
	sawQuarantine, sawRecovery := false, false
	everQuarantined := make(map[string]bool)
	emptyRounds, totalRounds := 0, 0
	var last fleet.TickResult

	tick := func() bool {
		res, err := w.Tick()
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return false
		}
		last = res
		totalRounds++
		if res.Merged == nil {
			emptyRounds++
		}
		var states []string
		for _, s := range res.Ledger.Sources {
			if s.State == "quarantined" {
				sawQuarantine = true
				everQuarantined[s.Name] = true
			} else if everQuarantined[s.Name] && s.State == "healthy" {
				sawRecovery = true
			}
			states = append(states, fmt.Sprintf("%s=%s", strings.TrimSuffix(s.Name, ".json"), s.State))
		}
		fmt.Fprintf(stdout, "round %d: %d context(s), %d conflicted, %d published; %s\n",
			res.Tick, res.Contexts, res.Conflicted, res.Published, strings.Join(states, " "))
		return true
	}

	timer := time.NewTicker(cfg.interval)
	defer timer.Stop()
	if !tick() { // round 1 immediately; then on the interval
		return exitFailure
	}
loop:
	for cfg.rounds == 0 || totalRounds < cfg.rounds {
		select {
		case <-stop:
			fmt.Fprintln(stderr, "chameleon-merge: interrupted")
			break loop
		case <-timer.C:
			if !tick() {
				return exitFailure
			}
		}
	}

	if cfg.ledgerOut != "" {
		b, err := json.MarshalIndent(w.Ledger(), "", "  ")
		if err == nil {
			err = os.WriteFile(cfg.ledgerOut, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		fmt.Fprintf(stderr, "chameleon-merge: health ledger written to %s\n", cfg.ledgerOut)
	}
	if cfg.out != "" && last.Merged != nil {
		if err := profiler.WriteProfilesFile(cfg.out, last.Merged.Profiles); err != nil {
			fmt.Fprintln(stderr, "chameleon-merge:", err)
			return exitFailure
		}
		fmt.Fprintf(stderr, "chameleon-merge: fleet snapshot written to %s\n", cfg.out)
	}

	if cfg.assertRecovery {
		var wedged []string
		for _, s := range w.Ledger().Sources {
			if s.State == "quarantined" {
				wedged = append(wedged, s.Name)
			}
		}
		switch {
		case !sawQuarantine:
			fmt.Fprintln(stderr, "chameleon-merge: ASSERT: no source was ever quarantined (faults did not bite)")
			return exitAssert
		case !sawRecovery:
			fmt.Fprintln(stderr, "chameleon-merge: ASSERT: no quarantined source ever recovered")
			return exitAssert
		case len(wedged) > 0:
			fmt.Fprintf(stderr, "chameleon-merge: ASSERT: source(s) ended wedged in quarantine: %s\n", strings.Join(wedged, ", "))
			return exitAssert
		case emptyRounds > 0:
			fmt.Fprintf(stderr, "chameleon-merge: ASSERT: %d of %d rounds merged nothing\n", emptyRounds, totalRounds)
			return exitAssert
		}
		fmt.Fprintf(stderr, "chameleon-merge: recovery asserted over %d rounds (quarantine observed and healed, no wedge)\n", totalRounds)
	}
	return exitOK
}

// armInjection arms per-source ingest faults keyed by file name: any
// source whose name contains "torn" delivers a 60%% prefix, "flaky"
// alternates valid and corrupt deliveries, "outage" delivers garbage for
// its first three reads and then goes quiet.
func armInjection(dir string, stderr io.Writer) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	var hooks []func(string, []byte) ([]byte, bool)
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		switch {
		case strings.Contains(name, "torn"):
			hooks = append(hooks, faults.TornPrefix(name, 0.6))
			fmt.Fprintf(stderr, "chameleon-merge: fault armed: %s delivers torn prefixes\n", name)
		case strings.Contains(name, "flaky"):
			hooks = append(hooks, faults.AlternateCorrupt(name))
			fmt.Fprintf(stderr, "chameleon-merge: fault armed: %s alternates valid/corrupt\n", name)
		case strings.Contains(name, "outage"):
			hooks = append(hooks, faults.CorruptFirstN(name, 3))
			fmt.Fprintf(stderr, "chameleon-merge: fault armed: %s starts with a 3-delivery outage\n", name)
		}
	}
	if len(hooks) == 0 {
		fmt.Fprintln(stderr, "chameleon-merge: -inject: no *torn*/*flaky*/*outage* sources found; nothing armed")
		return
	}
	faults.Arm(&faults.Plan{IngestSnapshot: func(src string, data []byte) ([]byte, bool) {
		for _, h := range hooks {
			if m, fired := h(src, data); fired {
				return m, true
			}
		}
		return data, false
	}})
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  chameleon-merge [flags] <snapshot.json>...     merge snapshots, print report
  chameleon-merge -watch <dir> [flags]           run the ingest service

merge flags:
  -o file            write the merged fleet snapshot (v2 format)
  -advise            run the advisor over the aggregate (-rules/-extended/-top)
  -json              machine-readable report
  -min-evidence N    per-source evidence to join skew detection (default 8)
  -min-confidence F  agreement threshold below which a context conflicts (default 0.7)

watch flags:
  -interval d        time between ingest rounds (default 1s)
  -rounds N          stop after N rounds (0 = until interrupted)
  -http addr         POST /ingest/{source} + GET /ledger endpoint
  -ledger-out file   write the final health ledger as JSON
  -fail-limit N      hard failures before quarantine (default 3)
  -backoff N         initial quarantine rounds, doubling (default 4)
  -stale-rounds N    rounds without delivery before stale (0 = never)
  -redeliver         re-read unchanged sources every round
  -inject            arm *torn*/*flaky*/*outage* fault hooks (soak mode)
  -assert-recovery   exit 3 unless quarantine occurred, healed, and nothing wedged
`)
}
