GO ?= go

.PHONY: build test race bench-trajectory analyze apply chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the checked-in benchmark trajectory file for this PR's five
# headline benchmarks (see cmd/bench-trajectory). Use BENCHTIME=1x for a
# smoke run (what CI does); the default takes a few minutes.
BENCHTIME ?= 0.3s
COUNT ?= 3
TRAJECTORY ?= BENCH_pr9.json

bench-trajectory:
	$(GO) run ./cmd/bench-trajectory -benchtime $(BENCHTIME) -count $(COUNT) -out $(TRAJECTORY)

# Dogfood the site analyzer over the repository itself (docs/ANALYSIS.md):
# every package except the deliberately-unsafe fixture tree must come back
# clean of error-severity findings, and the run writes the site manifest.
# CI runs this and uploads the manifest as an artifact.
MANIFEST ?= site-manifest.json

analyze:
	$(GO) run ./cmd/chameleon-sites -manifest $(MANIFEST) \
		$$($(GO) list ./... | grep -v examples/sitecheck/unsafe)

# Dogfood the ahead-of-time rewriter (docs/SPECIALIZE.md): profile the
# pmd workload, print the rewrite chameleon-apply derives for the repo's
# own workload tree, then verify the rewritten tree reproduces the
# reference checksum. Nothing is written without -write.
PROFILE ?= pmd-profile.json

apply:
	$(GO) run ./cmd/chameleon -workload pmd -scale 50 -profile-out $(PROFILE) > /dev/null
	$(GO) run ./cmd/chameleon-apply -profile $(PROFILE) -diff ./internal/workloads
	$(GO) run ./cmd/chameleon-apply -profile $(PROFILE) -verify pmd -scale 5 ./internal/workloads

# Chaos soak (docs/ROBUSTNESS.md): seeded fault schedules over every
# injection seam, all scenarios, with invariant auditors. Violations
# shrink to replayable reproducers under $(CHAOS_OUT). CI runs this with
# a larger seed matrix and replays the committed known-good schedule.
SEEDS ?= 32
CHAOS_OUT ?= chaos-artifacts

chaos:
	mkdir -p $(CHAOS_OUT)
	$(GO) run ./cmd/chameleon-chaos -seeds $(SEEDS) -out $(CHAOS_OUT)
	$(GO) run ./cmd/chameleon-chaos -replay examples/chaos/known-good.json
