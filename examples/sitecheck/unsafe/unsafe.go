// Package unsafe is the negative half of the chameleon-sites fixture
// tree: one function per refutation code, each site planted so exactly
// one diagnostic fires on the marked line. The golden tests parse the
// "want" comments below and fail on any mismatch in either direction.
// This package is excluded from the dogfooding gate (`make analyze`)
// precisely because its diagnostics are intentional.
package unsafe

import (
	"sync"

	"chameleon/internal/collections"
)

// Escapes returns the wrapper: the site cannot be specialized in
// isolation because callers see the representation's identity.
func Escapes(rt *collections.Runtime) *collections.List[string] {
	l := collections.NewLinkedList[string](rt) // want S001
	l.Add("x")
	return l
}

// Stored puts the wrapper into an interface variable: the wrapper type
// becomes observable through dynamic dispatch.
func Stored(rt *collections.Runtime) int {
	var sink any = collections.NewHashSet[int](rt) // want S002
	if s, ok := sink.(interface{ Size() int }); ok {
		return s.Size()
	}
	return 0
}

// Asserted reaches back through the abstraction with a type assertion
// on a concrete wrapper type.
func Asserted(v any) int {
	if l, ok := v.(*collections.List[int]); ok { // want S003
		return l.Size()
	}
	return 0
}

// AssertedSwitch does the same through a type-switch case.
func AssertedSwitch(v any) string {
	switch v.(type) {
	case *collections.Set[string]: // want S003
		return "set"
	}
	return ""
}

// Crosses hands the collection to a goroutine: single-owner profiling
// evidence does not transfer across the boundary.
func Crosses(rt *collections.Runtime, wg *sync.WaitGroup) {
	q := collections.NewArrayList[int](rt) // want S004
	wg.Add(1)
	go func() {
		defer wg.Done()
		q.Add(1)
		q.Free()
	}()
}

// Compared observes wrapper identity: == is a property of the wrapper
// object, not the abstract collection.
func Compared(rt *collections.Runtime) bool {
	a := collections.NewArraySet[string](rt) // want S005
	b := collections.NewArraySet[string](rt) // want S005
	same := a == b
	a.Free()
	b.Free()
	return same
}

// DupA and DupB share one static label: their profiles merge and a
// per-site decision is ambiguous. Each site is otherwise safe.

// DupA is the first of the duplicate-label pair.
func DupA(rt *collections.Runtime) {
	m := collections.NewHashMap[string, int](rt, collections.At("sitecheck.dup")) // want S006
	m.Put("a", 1)
	m.Free()
}

// DupB is the second of the duplicate-label pair.
func DupB(rt *collections.Runtime) {
	m := collections.NewHashMap[string, int](rt, collections.At("sitecheck.dup")) // want S006
	m.Put("b", 2)
	m.Free()
}

// Opaque builds its label at run time: the site cannot be joined to
// profiles statically.
func Opaque(rt *collections.Runtime, name string) {
	m := collections.NewHashMap[string, int](rt, collections.At("sitecheck."+name)) // want S007
	m.Put(name, 1)
	m.Free()
}

// OpaqueCap sizes the collection at run time: the manifest records the
// capacity as unknown.
func OpaqueCap(rt *collections.Runtime, n int) {
	l := collections.NewArrayList[int](rt, collections.Cap(n)) // want S008
	for i := 0; i < n; i++ {
		l.Add(i)
	}
	l.Free()
}
