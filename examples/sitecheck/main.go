// Sitecheck: the fixture program behind the chameleon-sites static
// analyzer (internal/analysis). The safe package holds allocation sites
// the analyzer must prove specializable; the unsafe package plants one
// violation per S-code. This driver runs the safe workload under a
// Static-mode session — the labels it interns at run time are exactly
// the context keys the analyzer derives from source, which the golden
// tests (and `chameleon-sites -profile`) join against a snapshot.
//
// Run with: go run ./examples/sitecheck
package main

import (
	"fmt"
	"os"

	"chameleon/examples/sitecheck/safe"
	"chameleon/internal/alloctx"
	"chameleon/internal/core"
	"chameleon/internal/profiler"
)

func main() {
	session := core.NewSession(core.Config{Mode: alloctx.Static})
	rt := session.Runtime()

	tags := safe.CountTags(rt, []string{"go", "analysis", "go", "sites"})
	hist := safe.Histogram(rt, []int{1, 2, 2, 3})
	words := safe.DynamicSite(rt, []string{"alpha", "beta", "alpha"})
	fmt.Printf("tags=%d hist=%d words=%d\n", tags, hist, words)

	// With an output path, persist the v2 snapshot so the analyzer's
	// -profile cross-check has something real to join against.
	if len(os.Args) > 1 {
		profiles := session.Prof.Snapshot()
		if err := profiler.WriteProfilesFile(os.Args[1], profiles); err != nil {
			fmt.Fprintln(os.Stderr, "sitecheck:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d profiles to %s\n", len(profiles), os.Args[1])
	}
}
