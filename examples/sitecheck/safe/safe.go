// Package safe is the positive half of the chameleon-sites fixture
// tree: every allocation here is provably confined to its function, so
// the analyzer must classify each site Safe with zero findings (the
// label lints S007/S008 included). The golden tests assert the absence
// of diagnostics on these sites as strictly as they assert the presence
// of the planted ones in ../unsafe.
package safe

import "chameleon/internal/collections"

// CountTags allocates with a constant static label and capacity: the
// canonical fully-joinable site. The analyzer must derive the same
// context key alloctx.Static interns for "sitecheck.tags".
func CountTags(rt *collections.Runtime, tags []string) int {
	m := collections.NewHashMap[string, int](rt, collections.At("sitecheck.tags"), collections.Cap(8))
	for _, t := range tags {
		c, _ := m.Get(t)
		m.Put(t, c+1)
	}
	n := m.Size()
	m.Free()
	return n
}

// histCtx is the one-level helper indirection the workloads use for
// labels; the analyzer inlines it and still resolves the constant.
func histCtx() collections.Option { return collections.At("sitecheck.hist") }

// Histogram allocates through the helper: same joinability as CountTags.
func Histogram(rt *collections.Runtime, values []int) int {
	h := collections.NewArrayList[int](rt, histCtx())
	for _, v := range values {
		h.Add(v)
	}
	n := h.Size()
	h.Free()
	return n
}

// Variants allocates under one label in two exclusive branches — the
// baseline/tuned idiom the workloads use everywhere. At most one arm
// executes per pass, so the shared label merges nothing and must NOT be
// flagged S006.
func Variants(rt *collections.Runtime, tuned bool) int {
	var l *collections.List[int]
	if tuned {
		l = collections.NewArrayList[int](rt, collections.At("sitecheck.variants"), collections.Cap(4))
	} else {
		l = collections.NewArrayList[int](rt, collections.At("sitecheck.variants"))
	}
	l.Add(1)
	n := l.Size()
	l.Free()
	return n
}

// ReusedSite binds the option to a single-assignment local before use —
// the onlinemode idiom for labeling many allocations from one loop. The
// analyzer must propagate the constant through the variable.
func ReusedSite(rt *collections.Runtime, rounds int) int {
	site := collections.At("sitecheck.reused")
	total := 0
	for i := 0; i < rounds; i++ {
		m := collections.NewHashMap[int, int](rt, site)
		m.Put(i, i)
		total += m.Size()
		m.Free()
	}
	return total
}

// DynamicSite carries no At label: the analyzer derives the frame label
// dynamic capture would symbolize ("safe.DynamicSite:<line>"). Keep the
// allocation on one line so the golden test can assert the exact label.
func DynamicSite(rt *collections.Runtime, words []string) int {
	seen := collections.NewHashSet[string](rt)
	for _, w := range words {
		seen.Add(w)
	}
	n := seen.Size()
	seen.Free()
	return n
}
