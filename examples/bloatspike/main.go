// Bloatspike example: reproduces the paper's Fig. 8 finding on bloat — a
// mid-run spike where a large share of the heap is LinkedList$Entry
// objects heading *empty* lists — and shows the collection-aware GC output
// that reveals it, the rule that catches it, and the lazy-allocation fix.
//
// Run with: go run ./examples/bloatspike [-scale N]
package main

import (
	"flag"
	"fmt"

	"chameleon/internal/advisor"
	"chameleon/internal/core"
	"chameleon/internal/experiments"
	"chameleon/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 400, "methods to compile")
	flag.Parse()

	spec, err := workloads.ByName("bloat")
	if err != nil {
		panic(err)
	}

	s := core.NewSession(core.Config{GCThreshold: 48 << 10})
	checksum := spec.Run(s.Runtime(), workloads.Baseline, *scale)
	s.FinalGC()

	fmt.Println("collections as % of live data per GC cycle — note the spike (Fig. 8):")
	series := s.PotentialSeries()
	fmt.Print(experiments.FormatSeries(series, len(series)/32+1))

	rep, err := s.Report(advisor.Options{Top: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nthe rule engine identifies the empty lists:")
	fmt.Print(rep.Format())

	s2 := core.NewSession(core.Config{GCThreshold: 48 << 10})
	checksum2 := spec.Run(s2.Runtime(), workloads.Tuned, *scale)
	s2.FinalGC()
	if checksum != checksum2 {
		panic("tuned variant changed the result")
	}
	base, tuned := s.Heap.MinimalHeap(), s2.Heap.MinimalHeap()
	fmt.Printf("\nminimal heap: %d -> %d bytes after lazy allocation (%.1f%% reduction; paper: 56%%)\n",
		base, tuned, 100*float64(base-tuned)/float64(base))
}
