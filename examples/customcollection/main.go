// Customcollection: profiling application-specific collection classes.
//
// The paper notes that benchmarks like HSQLDB "use their own collection
// classes", and that Chameleon's collection-aware GC "can profile them
// already as it is parametric in the semantic maps that describe the
// custom collection classes" (§5.1). This example defines its own
// collection — an open-addressed int-to-int cache that is NOT part of the
// chameleon library — gives it a semantic map (the heap.Collection
// interface) and a trace record (profiler.Instance), and shows the same
// per-context report working on it.
//
// Run with: go run ./examples/customcollection
package main

import (
	"fmt"

	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/core"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
	"chameleon/internal/spec"
)

// IntCache is the application's own collection class: a fixed-capacity
// open-addressed int->int cache, as a database engine might hand-roll.
type IntCache struct {
	keys    []int32
	vals    []int32
	used    []bool
	size    int
	maxSize int

	// Chameleon integration: a semantic map needs only the context key
	// and the ability to size the object; trace profiling needs the
	// instance record.
	ctx    *alloctx.Context
	inst   *profiler.Instance
	ticket *heap.Ticket
	model  heap.SizeModel
}

// NewIntCache allocates the custom collection and registers it with the
// Chameleon session — the "very little manual effort in the library" the
// paper mentions.
func NewIntCache(s *core.Session, label string, capacity int) *IntCache {
	c := &IntCache{
		keys:  make([]int32, capacity),
		vals:  make([]int32, capacity),
		used:  make([]bool, capacity),
		ctx:   s.Contexts.Static(label),
		model: s.Heap.Model(),
	}
	// KindCollection: the custom class maps to no library kind; rules over
	// srcType Collection still apply to it.
	c.inst = s.Prof.OnAlloc(c.ctx, spec.KindCollection, spec.KindCollection, capacity)
	c.ticket = s.Heap.Register(c)
	return c
}

// HeapFootprint is the semantic map: it teaches the collection-aware GC
// how to size this custom class (paper §4.3.2).
func (c *IntCache) HeapFootprint() heap.Footprint {
	m := c.model
	obj := m.ObjectFields(3, 2)
	arrays := 2*m.IntArray(int64(len(c.keys))) + m.AlignUp(m.ArrayHeader+int64(len(c.used)))
	usedArrays := 2*m.IntArray(int64(c.size)) + m.AlignUp(m.ArrayHeader+int64(c.size))
	f := heap.Footprint{Live: obj + arrays, Used: obj + usedArrays}
	if c.size > 0 {
		f.Core = m.IntArray(2 * int64(c.size))
	}
	return f
}

// ContextKey implements heap.Collection.
func (c *IntCache) ContextKey() uint64 { return c.ctx.Key() }

// KindName implements heap.Collection (Table 3 type distribution).
func (c *IntCache) KindName() string { return "app.IntCache" }

// Put inserts or updates a key.
func (c *IntCache) Put(k, v int32) bool {
	mask := len(c.keys) - 1
	i := int(uint32(k)*2654435761) & mask
	for probes := 0; probes < len(c.keys); probes++ {
		if !c.used[i] {
			c.used[i], c.keys[i], c.vals[i] = true, k, v
			c.size++
			if c.size > c.maxSize {
				c.maxSize = c.size
			}
			c.inst.Record(spec.Put)
			c.inst.NoteSize(c.size)
			// Push the new footprint into the heap ticket: the GC never
			// reads the collection itself, it aggregates these cached
			// readings (the library wrappers do the same in afterMutate).
			c.ticket.Sync(c.HeapFootprint(), c.KindName())
			return true
		}
		if c.keys[i] == k {
			c.vals[i] = v
			c.inst.Record(spec.Put)
			return true
		}
		i = (i + 1) & mask
	}
	return false // full
}

// Get looks a key up.
func (c *IntCache) Get(k int32) (int32, bool) {
	c.inst.Record(spec.GetKey)
	mask := len(c.keys) - 1
	i := int(uint32(k)*2654435761) & mask
	for probes := 0; probes < len(c.keys); probes++ {
		if !c.used[i] {
			return 0, false
		}
		if c.keys[i] == k {
			return c.vals[i], true
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// Free releases the cache (death: fold the trace record, drop from the
// live set).
func (c *IntCache) Free(s *core.Session) {
	c.ticket.Free()
	s.Prof.OnDeath(c.inst)
}

func main() {
	session := core.NewSession(core.Config{GCThreshold: 16 << 10})

	// The application allocates generously sized caches but stores only a
	// handful of entries in each — the classic utilization gap.
	var caches []*IntCache
	for i := 0; i < 64; i++ {
		c := NewIntCache(session, "hsqldb.index.RowCache:210;hsqldb.Table.open:95", 256)
		for j := int32(0); j < 6; j++ {
			c.Put(j, j*10)
		}
		for j := int32(0); j < 100; j++ {
			c.Get(j % 6)
		}
		caches = append(caches, c)
	}
	session.FinalGC()

	// The builtin rules target library kinds; write one for the custom
	// class's pathology (oversized initial capacity) — rules over srcType
	// Collection apply to any profiled class.
	rs := rules.Builtin()
	extra, err := rules.Parse(`
Collection : initialCapacity > maxSize * 4 && maxSize > 0 -> setCapacity(maxSize)
    "Space: initial capacity far above the observed maximal size"
`)
	if err != nil {
		panic(err)
	}
	rs.Rules = append(rs.Rules, extra.Rules...)

	rep, err := session.Report(advisor.Options{Rules: rs})
	if err != nil {
		panic(err)
	}
	fmt.Println("custom collection class profiled through its semantic map:")
	fmt.Print(rep.FormatTopContexts(1))
	fmt.Println("\nsuggestions (srcType Collection rules apply to custom classes):")
	fmt.Print(rep.Format())

	for _, c := range caches {
		c.Free(session)
	}
	st := session.Heap.Stats()
	fmt.Printf("\nGC saw the custom class in its type distribution; peak live %d bytes\n", st.PeakLive)
}
