// Customrules example: the Fig. 4 rule language as a user-facing feature.
// It writes a small custom rule set in the DSL, checks it statically,
// prints it back through the pretty-printer, and applies it to a profiled
// run — "a flexible rule engine that allows the programmer to write
// implementation selection rules ... using a simple, but expressive
// implementation selection language" (paper §1.1).
//
// Run with: go run ./examples/customrules
package main

import (
	"fmt"
	"os"

	"chameleon/internal/advisor"
	"chameleon/internal/collections"
	"chameleon/internal/core"
	"chameleon/internal/rules"
)

// The custom rule set: a stricter small-map rule plus a rule built from an
// operation *ratio*, something the built-in set does not use.
const customRules = `
// Replace read-mostly small maps: at least 90% of operations are gets.
HashMap : maxSize < SMALL && #get(Object) / #allOps > 0.9 -> ArrayMap(maxSize)
    "Space: read-mostly small map - use ArrayMap"

// Lists that are iterated but never searched should stay arrays but be
// exactly sized.
List : #iterator > 0 && #contains == 0 && maxSize > initialCapacity -> setCapacity(maxSize)
    "Space/Time: iterate-only list - size it exactly"
`

func main() {
	rs, err := rules.Parse(customRules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse error:", err)
		os.Exit(1)
	}
	params := rules.Params{"SMALL": 12}
	if errs := rules.Check(rs, params); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "check error:", e)
		}
		os.Exit(1)
	}
	fmt.Println("custom rules (pretty-printed from the AST):")
	fmt.Print(rules.Print(rs))
	fmt.Printf("parameters used: %v\n\n", rules.ParamsOf(rs))

	// Profile a run that triggers both rules.
	session := core.NewSession(core.Config{GCThreshold: 32 << 10})
	rt := session.Runtime()

	for i := 0; i < 100; i++ {
		m := collections.NewHashMap[int, int](rt, collections.At("cache.Lookup:7;svc.Handle:91"))
		for k := 0; k < 4; k++ {
			m.Put(k, k*i)
		}
		for r := 0; r < 200; r++ {
			m.Get(r % 4)
		}
		m.Free()
	}
	for i := 0; i < 50; i++ {
		l := collections.NewArrayList[int](rt, collections.At("report.Rows:3;report.Emit:55"))
		for k := 0; k < 40; k++ {
			l.Add(k)
		}
		it := l.Iterator()
		for it.HasNext() {
			_ = it.Next()
		}
		l.Free()
	}
	session.FinalGC()

	// MinPotential -1: report even contexts whose *live* potential is
	// negligible — the short-lived cache maps die instantly, so their win
	// is allocation churn rather than peak heap.
	rep, err := session.Report(advisor.Options{Rules: rs, Params: params, MinPotential: -1})
	if err != nil {
		panic(err)
	}
	fmt.Println("suggestions from the custom rule set:")
	fmt.Print(rep.Format())
}
