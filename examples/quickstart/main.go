// Quickstart: profile your own collection usage and get suggestions.
//
// This example builds a Chameleon session with *dynamic* allocation-context
// capture (real stack walks — no site labels needed), exercises a few
// collections the way a small application might, and prints the ranked
// suggestion report.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/core"
)

// index builds a tiny inverted index: one small map per document.
func index(rt *collections.Runtime, docs [][]string) []*collections.Map[string, int] {
	var maps []*collections.Map[string, int]
	for _, doc := range docs {
		// Allocated with the default HashMap — Chameleon will notice
		// these stay tiny and suggest an ArrayMap.
		m := collections.NewHashMap[string, int](rt)
		for _, w := range doc {
			c, _ := m.Get(w)
			m.Put(w, c+1)
		}
		maps = append(maps, m)
	}
	return maps
}

// search runs membership-heavy queries against a list — the pattern the
// LinkedHashSet rule exists for.
func search(rt *collections.Runtime, queries []string) int {
	vocabulary := collections.NewArrayList[string](rt)
	for i := 0; i < 200; i++ {
		vocabulary.Add(fmt.Sprintf("term-%d", i))
	}
	hits := 0
	for r := 0; r < 50; r++ {
		for _, q := range queries {
			if vocabulary.Contains(q) {
				hits++
			}
		}
	}
	vocabulary.Free()
	return hits
}

func main() {
	// 1. Create a session: simulated collection-aware heap + profiler +
	//    dynamic context capture.
	session := core.NewSession(core.Config{
		Mode:        alloctx.Dynamic,
		GCThreshold: 32 << 10,
	})
	rt := session.Runtime()

	// 2. Run your code against the chameleon collections.
	docs := make([][]string, 300)
	for i := range docs {
		docs[i] = []string{"the", "quick", "brown", "fox", fmt.Sprintf("id-%d", i)}
	}
	maps := index(rt, docs)
	hits := search(rt, []string{"term-3", "term-150", "missing"})
	fmt.Printf("indexed %d documents, %d query hits\n\n", len(maps), hits)

	// 3. Release what dies; snapshot the rest.
	for _, m := range maps {
		m.Free()
	}
	session.FinalGC()

	// 4. Ask the rule engine for suggestions.
	report, err := session.Report(advisor.Options{Top: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("top allocation contexts:")
	fmt.Print(report.FormatTopContexts(3))
	fmt.Println("\nsuggestions:")
	fmt.Print(report.Format())

	st := session.Heap.Stats()
	fmt.Printf("\nheap: peak live %d bytes over %d GC cycles\n", st.PeakLive, st.NumGC)
}
