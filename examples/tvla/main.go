// TVLA example: the paper's §2.1 walkthrough end to end.
//
// It (1) profiles the TVLA-style abstract-interpretation workload and
// prints the Fig. 2 potential series and the §2.1 suggestion report, then
// (2) applies the suggestions (the tuned variant) and re-runs, comparing
// minimal heap and wall-clock time — the paper's methodology (§5.2).
//
// Run with: go run ./examples/tvla [-scale N]
package main

import (
	"flag"
	"fmt"
	"time"

	"chameleon/internal/advisor"
	"chameleon/internal/core"
	"chameleon/internal/experiments"
	"chameleon/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 300, "fixpoint steps")
	flag.Parse()

	spec, err := workloads.ByName("tvla")
	if err != nil {
		panic(err)
	}

	// Step 1: run under profiling; check the saving potential.
	s := core.NewSession(core.Config{GCThreshold: 64 << 10})
	start := time.Now()
	checksum := spec.Run(s.Runtime(), workloads.Baseline, *scale)
	baseTime := time.Since(start)
	s.FinalGC()
	baseHeap := s.Heap.MinimalHeap()

	fmt.Println("collections as % of live data, per GC cycle (Fig. 2):")
	series := s.PotentialSeries()
	fmt.Print(experiments.FormatSeries(series, len(series)/24+1))

	rep, err := s.Report(advisor.Options{Top: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nChameleon suggestions (§2.1):")
	fmt.Print(rep.Format())

	// Step 2: apply the suggested fixes and re-run.
	s2 := core.NewSession(core.Config{GCThreshold: 64 << 10})
	start = time.Now()
	checksum2 := spec.Run(s2.Runtime(), workloads.Tuned, *scale)
	tunedTime := time.Since(start)
	s2.FinalGC()
	tunedHeap := s2.Heap.MinimalHeap()

	if checksum != checksum2 {
		panic("tuned variant changed the analysis result!")
	}

	fmt.Printf("\nbefore: minimal heap %8d bytes, %8.2fms, %d GCs\n",
		baseHeap, float64(baseTime.Microseconds())/1000, s.Heap.Stats().NumGC)
	fmt.Printf("after:  minimal heap %8d bytes, %8.2fms, %d GCs\n",
		tunedHeap, float64(tunedTime.Microseconds())/1000, s2.Heap.Stats().NumGC)
	fmt.Printf("minimal heap reduced by %.1f%% (paper: 53.95%%); result unchanged (checksum %#x)\n",
		100*float64(baseHeap-tunedHeap)/float64(baseHeap), checksum)
}
