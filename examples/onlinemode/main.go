// Onlinemode example: the fully-automatic replacement mode of §3.3.2/§5.4.
// No report, no manual edits: the runtime itself watches each allocation
// context, and once a context has accumulated enough evidence, subsequent
// allocations at that context silently receive the better implementation.
//
// Run with: go run ./examples/onlinemode
package main

import (
	"fmt"

	"chameleon/internal/adaptive"
	"chameleon/internal/collections"
	"chameleon/internal/core"
)

func main() {
	session := core.NewSession(core.Config{
		Online:        true,
		OnlineOptions: adaptive.Options{MinEvidence: 16},
		GCThreshold:   32 << 10,
	})
	rt := session.Runtime()

	// A "configuration cache" phase: many tiny maps from one site.
	site := collections.At("app.ConfigCache.load:42;app.Server.start:17")
	kindCounts := map[string]int{}
	for i := 0; i < 200; i++ {
		m := collections.NewHashMap[string, int](rt, site)
		m.Put("port", 8080+i)
		m.Put("retries", 3)
		m.Put("verbose", 1)
		if v, ok := m.Get("port"); !ok || v != 8080+i {
			panic("wrong value")
		}
		kindCounts[m.KindName()]++
		m.Free()
	}

	fmt.Println("allocations by backing implementation (same declared type: HashMap):")
	for kind, n := range kindCounts {
		fmt.Printf("  %-12s %d\n", kind, n)
	}
	fmt.Printf("\nonline selector replaced %d allocations\n", session.Selector.Replacements())
	fmt.Println("(the first ~16 allocations gathered evidence as HashMaps; every later")
	fmt.Println(" allocation at the context was transparently backed by an ArrayMap)")
}
