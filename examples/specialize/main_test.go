package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"chameleon/internal/alloctx"
	"chameleon/internal/apply"
	"chameleon/internal/collections"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
)

// The committed testdata (profile.json, golden.diff) is this example's
// contract with chameleon-apply. These tests keep both files fresh: if
// the workload, the rules, or the rewriter change shape, the failure
// message says which fixture to regenerate (the two commands in the
// package comment).

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

func profileSelf(t *testing.T) []*profiler.Profile {
	t.Helper()
	prof := profiler.New()
	h := heap.New(heap.Config{GCThreshold: 1 << 30, Observer: prof, KeepSnapshots: true, KeepContexts: true})
	rt := collections.NewRuntime(collections.Config{
		Heap:     h,
		Profiler: prof,
		Contexts: alloctx.NewTable(),
		Mode:     alloctx.Static,
	})
	run(rt)
	return prof.Snapshot()
}

// TestSnapshotFresh re-profiles the program in process and asserts the
// committed snapshot is byte-identical — serialization is deterministic,
// so any drift means testdata/profile.json needs regenerating.
func TestSnapshotFresh(t *testing.T) {
	var buf bytes.Buffer
	if err := profiler.WriteProfiles(&buf, profileSelf(t)); err != nil {
		t.Fatal(err)
	}
	committed, err := os.ReadFile(filepath.Join("testdata", "profile.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), committed) {
		t.Fatal("testdata/profile.json is stale — regenerate with:\n" +
			"  go run ./examples/specialize -profile-out examples/specialize/testdata/profile.json")
	}
}

// TestGoldenRewrite runs the real pipeline over this package with the
// committed snapshot and asserts both the per-site classifications and
// the exact rewrite diff.
func TestGoldenRewrite(t *testing.T) {
	root := repoRoot(t)
	f, err := os.Open(filepath.Join("testdata", "profile.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	profiles, err := profiler.ReadProfiles(f)
	if err != nil {
		t.Fatal(err)
	}

	res, err := apply.Run(apply.Options{
		Dir:          root,
		Patterns:     []string{"./examples/specialize"},
		Profiles:     profiles,
		MinPotential: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stale) != 0 {
		t.Fatalf("stale contexts: %v", res.Stale)
	}

	want := map[string]apply.Status{
		"spec.Document.tags:14;spec.Main.run:40":  apply.StatusReplace,
		"spec.Visitor.visit:31;spec.Main.run:44":  apply.StatusReplace,
		"spec.Encoder.buffer:52;spec.Main.run:47": apply.StatusRetune,
		"spec.Registry.init:22;spec.Main.run:8":   apply.StatusSkipUnsafe,
		"spec.Cache.bucket:67;spec.Main.run:55":   apply.StatusSkipUndecided,
	}
	seen := map[string]apply.Status{}
	for _, d := range res.Sites {
		seen[d.Site.Label] = d.Status
	}
	for label, status := range want {
		if seen[label] != status {
			t.Errorf("site %s: %s, want %s", label, seen[label], status)
		}
	}

	golden, err := os.ReadFile(filepath.Join("testdata", "golden.diff"))
	if err != nil {
		t.Fatal(err)
	}
	if got := apply.Diff(root, res.Files); got != string(golden) {
		t.Fatalf("rewrite diff diverged from testdata/golden.diff — regenerate with:\n"+
			"  go run ./cmd/chameleon-apply -profile examples/specialize/testdata/profile.json -diff ./examples/specialize > examples/specialize/testdata/golden.diff\ngot:\n%s", got)
	}
}
