// Specialize: the ahead-of-time end of the Chameleon pipeline, in one
// small program (docs/SPECIALIZE.md).
//
// The program exercises five allocation sites chosen so that each lands
// in a different chameleon-apply classification:
//
//	tags     — HashMap, always exactly 6 entries      -> replace with
//	           NewFixedArrayMap, decided capacity appended
//	scratch  — ArrayList, ~90% of instances stay empty -> replace with
//	           NewFixedLazyArrayList (pure rename, no capacity)
//	buffer   — ArrayList, Cap(4) but always grows to 32 -> retune: the
//	           Cap argument is rewritten in place
//	registry — HashSet that escapes into a slice       -> skip:unsafe,
//	           decided but refused (the rewrite cannot prove the site)
//	mixed    — HashMap whose sizes swing wildly        -> skip:undecided,
//	           the Definition 3.1 stability gate leaves it alone
//
// Run it to profile itself and write the snapshot chameleon-apply reads:
//
//	go run ./examples/specialize -profile-out examples/specialize/testdata/profile.json
//	go run ./cmd/chameleon-apply -profile examples/specialize/testdata/profile.json -diff ./examples/specialize
//
// The committed testdata/profile.json and testdata/golden.diff are exactly
// those two commands' outputs; main_test.go keeps them fresh.
package main

import (
	"flag"
	"fmt"
	"os"

	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
)

// The site labels follow the "frame;frame" shape of real captured
// contexts; constant labels are what lets chameleon-apply join profiles
// back to syntax.

func tagsCtx() collections.Option {
	return collections.At("spec.Document.tags:14;spec.Main.run:40")
}

func scratchCtx() collections.Option {
	return collections.At("spec.Visitor.visit:31;spec.Main.run:44")
}

func bufferCtx() collections.Option {
	return collections.At("spec.Encoder.buffer:52;spec.Main.run:47")
}

func registryCtx() collections.Option {
	return collections.At("spec.Registry.init:22;spec.Main.run:8")
}

func mixedCtx() collections.Option {
	return collections.At("spec.Cache.bucket:67;spec.Main.run:55")
}

// run drives the five sites deterministically and returns a checksum, so
// the committed profile snapshot is reproducible byte for byte.
func run(rt *collections.Runtime) uint64 {
	var checksum uint64
	mix := func(v uint64) { checksum ^= v; checksum *= 1099511628211 }

	// registry: long-lived sets collected into a slice. The append makes
	// the wrapper escape the allocating function's locals, so the site is
	// refuted (S-code) and must never be rewritten — even though its
	// profile earns a setCapacity decision (Cap(64) grown to 400).
	var registries []*collections.Set[int]
	for r := 0; r < 2; r++ {
		s := collections.NewHashSet[int](rt, registryCtx(), collections.Cap(64))
		for i := 0; i < 400; i++ {
			s.Add(r*1000 + i)
		}
		registries = append(registries, s)
	}

	for round := 0; round < 64; round++ {
		// tags: small and perfectly stable — every instance holds exactly
		// 6 entries and is get-dominated. Table 2: ArrayMap(maxSize).
		tags := collections.NewHashMap[int, int](rt, tagsCtx())
		for k := 0; k < 6; k++ {
			tags.Put(k, round+k)
		}
		for k := 0; k < 24; k++ {
			if v, ok := tags.Get(k % 6); ok {
				mix(uint64(v))
			}
		}
		tags.Free()

		// scratch: the bloat/PMD pathology — 7 of 8 instances stay empty.
		scratch := collections.NewArrayList[int](rt, scratchCtx())
		if round%8 == 0 {
			scratch.Add(round)
			scratch.Add(round + 1)
		}
		scratch.Each(func(x int) bool {
			mix(uint64(x))
			return true
		})
		scratch.Free()

		// buffer: sized by guesswork at 4, grows to 32 every time —
		// incremental resizing the setCapacity rule exists for.
		buffer := collections.NewArrayList[int](rt, bufferCtx(), collections.Cap(4))
		for k := 0; k < 32; k++ {
			buffer.Add(round * k)
		}
		mix(uint64(buffer.Size()))
		buffer.Free()

		// mixed: sizes alternate between tiny and large, so maxSize is
		// unstable (stddev far above the Definition 3.1 bound) and no
		// size-reading rule may fire.
		mixed := collections.NewHashMap[int, int](rt, mixedCtx())
		n := 2
		if round%2 == 1 {
			n = 28
		}
		for k := 0; k < n; k++ {
			mixed.Put(k, k)
		}
		mix(uint64(mixed.Size()))
		mixed.Free()
	}

	for _, s := range registries {
		s.Each(func(x int) bool {
			mix(uint64(x))
			return true
		})
		s.Free()
	}
	return checksum
}

func main() {
	profileOut := flag.String("profile-out", "", "write the profile snapshot as JSON for chameleon-apply")
	flag.Parse()

	prof := profiler.New()
	h := heap.New(heap.Config{GCThreshold: 1 << 30, Observer: prof, KeepSnapshots: true, KeepContexts: true})
	rt := collections.NewRuntime(collections.Config{
		Heap:     h,
		Profiler: prof,
		Contexts: alloctx.NewTable(),
		Mode:     alloctx.Static,
	})

	checksum := run(rt)
	fmt.Printf("run complete: checksum=%#x\n", checksum)

	if *profileOut != "" {
		snapshot := prof.Snapshot()
		if err := profiler.WriteProfilesFile(*profileOut, snapshot); err != nil {
			fmt.Fprintf(os.Stderr, "specialize: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile snapshot: %s (%d contexts)\n", *profileOut, len(snapshot))
	}
}
