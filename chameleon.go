// Package chameleon is a from-scratch reproduction of "Chameleon: Adaptive
// Selection of Collections" (Shacham, Vechev, Yahav — PLDI 2009): a
// low-overhead tool that profiles how a program uses its collections, per
// allocation context, and selects the appropriate implementation for each
// context with a rule engine — either as a report for the programmer or
// fully automatically at run time.
//
// The system consists of:
//
//   - a collections library (internal/collections) with interchangeable
//     backing implementations behind one level of indirection: ArrayList,
//     LinkedList, LazyArrayList, SingletonList, IntArray, HashSet,
//     ArraySet, LazySet, LinkedHashSet, SizeAdaptingSet, HashMap,
//     ArrayMap, LazyMap, SingletonMap, LinkedHashMap, SizeAdaptingMap;
//   - a simulated collection-aware heap and GC (internal/heap) that
//     reproduces 32-bit JVM object layout and computes live/used/core
//     statistics per GC cycle through semantic maps;
//   - allocation-context capture (internal/alloctx), static or dynamic
//     (stack walking), with sampling;
//   - the semantic profiler (internal/profiler) aggregating the paper's
//     Table 1 statistics per context;
//   - the Fig. 4 rule language (internal/rules): lexer, parser, checker,
//     evaluator and printer, with the paper's Table 2 rules built in;
//   - the rule-engine report (internal/advisor) and the fully-automatic
//     online mode (internal/adaptive);
//   - the six evaluation workloads (internal/workloads) and the
//     experiment harness (internal/experiments) regenerating every figure
//     and table of the paper's §5.
//
// This root package re-exports the high-level entry points so external
// code can use the tool without referring to internal packages. See
// examples/quickstart for the five-minute tour, and the cmd/chameleon and
// cmd/chameleon-bench binaries for the command-line tools.
package chameleon

import (
	"chameleon/internal/adaptive"
	"chameleon/internal/advisor"
	"chameleon/internal/alloctx"
	"chameleon/internal/collections"
	"chameleon/internal/core"
	"chameleon/internal/heap"
	"chameleon/internal/profiler"
	"chameleon/internal/rules"
	"chameleon/internal/spec"
	"chameleon/internal/workloads"
)

// Session is one profiled program run: heap, profiler, contexts and
// (optionally) the online selector.
type Session = core.Session

// Config configures a Session.
type Config = core.Config

// NewSession builds a fully wired session.
func NewSession(cfg Config) *Session { return core.NewSession(cfg) }

// Runtime is the collections runtime handles are allocated through.
type Runtime = collections.Runtime

// List, Set, Map and Iterator are the wrapper collection types.
type (
	// List is the list wrapper type.
	List[T comparable] = collections.List[T]
	// Set is the set wrapper type.
	Set[T comparable] = collections.Set[T]
	// Map is the map wrapper type.
	Map[K comparable, V comparable] = collections.Map[K, V]
	// Iterator walks a snapshot of a collection.
	Iterator[T any] = collections.Iterator[T]
)

// Option configures one allocation (Cap, At, Impl, AdaptAt).
type Option = collections.Option

// Allocation options.
var (
	// Cap requests an initial capacity.
	Cap = collections.Cap
	// At labels the allocation with a static context.
	At = collections.At
	// Impl forces a backing implementation.
	Impl = collections.Impl
	// AdaptAt sets the size-adapting conversion threshold.
	AdaptAt = collections.AdaptAt
)

// Constructors for every collection kind.
func NewArrayList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewArrayList[T](rt, opts...)
}

// NewLinkedList allocates a list declared as a LinkedList.
func NewLinkedList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewLinkedList[T](rt, opts...)
}

// NewSinglyLinkedList allocates a forward-only linked list (§5.4).
func NewSinglyLinkedList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewSinglyLinkedList[T](rt, opts...)
}

// NewOpenHashSet allocates an open-addressing set (no entry objects).
func NewOpenHashSet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewOpenHashSet[T](rt, opts...)
}

// NewOpenHashMap allocates an open-addressing map (no entry objects).
func NewOpenHashMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewOpenHashMap[K, V](rt, opts...)
}

// NewHashSet allocates a set declared as a HashSet.
func NewHashSet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewHashSet[T](rt, opts...)
}

// NewHashMap allocates a map declared as a HashMap.
func NewHashMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewHashMap[K, V](rt, opts...)
}

// Fixed constructors: the ahead-of-time specialization surface
// chameleon-apply rewrites decided sites onto (docs/SPECIALIZE.md). Same
// wrapper types, final backing implementation, no profiling machinery.
// The full set is re-exported so rewrites of root-package allocation
// sites always have their target in scope.
func NewFixedArrayList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewFixedArrayList[T](rt, opts...)
}

// NewFixedLinkedList allocates an unprofiled LinkedList-backed list.
func NewFixedLinkedList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewFixedLinkedList[T](rt, opts...)
}

// NewFixedSinglyLinkedList allocates an unprofiled singly-linked list.
func NewFixedSinglyLinkedList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewFixedSinglyLinkedList[T](rt, opts...)
}

// NewFixedEmptyList allocates an unprofiled immutable empty list.
func NewFixedEmptyList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewFixedEmptyList[T](rt, opts...)
}

// NewFixedLazyArrayList allocates an unprofiled LazyArrayList-backed list.
func NewFixedLazyArrayList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewFixedLazyArrayList[T](rt, opts...)
}

// NewFixedSingletonList allocates an unprofiled SingletonList-backed list.
func NewFixedSingletonList[T comparable](rt *Runtime, opts ...Option) *List[T] {
	return collections.NewFixedSingletonList[T](rt, opts...)
}

// NewFixedIntArrayList allocates an unprofiled unboxed-int-array list.
func NewFixedIntArrayList(rt *Runtime, opts ...Option) *List[int] {
	return collections.NewFixedIntArrayList(rt, opts...)
}

// NewFixedHashSet allocates an unprofiled HashSet-backed set.
func NewFixedHashSet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewFixedHashSet[T](rt, opts...)
}

// NewFixedArraySet allocates an unprofiled ArraySet-backed set.
func NewFixedArraySet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewFixedArraySet[T](rt, opts...)
}

// NewFixedOpenHashSet allocates an unprofiled open-addressing set.
func NewFixedOpenHashSet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewFixedOpenHashSet[T](rt, opts...)
}

// NewFixedLazySet allocates an unprofiled LazySet-backed set.
func NewFixedLazySet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewFixedLazySet[T](rt, opts...)
}

// NewFixedLinkedHashSet allocates an unprofiled LinkedHashSet-backed set.
func NewFixedLinkedHashSet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewFixedLinkedHashSet[T](rt, opts...)
}

// NewFixedSizeAdaptingSet allocates an unprofiled size-adapting set.
func NewFixedSizeAdaptingSet[T comparable](rt *Runtime, opts ...Option) *Set[T] {
	return collections.NewFixedSizeAdaptingSet[T](rt, opts...)
}

// NewFixedHashMap allocates an unprofiled HashMap-backed map.
func NewFixedHashMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedHashMap[K, V](rt, opts...)
}

// NewFixedArrayMap allocates an unprofiled ArrayMap-backed map.
func NewFixedArrayMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedArrayMap[K, V](rt, opts...)
}

// NewFixedOpenHashMap allocates an unprofiled open-addressing map.
func NewFixedOpenHashMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedOpenHashMap[K, V](rt, opts...)
}

// NewFixedLazyMap allocates an unprofiled LazyMap-backed map.
func NewFixedLazyMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedLazyMap[K, V](rt, opts...)
}

// NewFixedSingletonMap allocates an unprofiled SingletonMap-backed map.
func NewFixedSingletonMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedSingletonMap[K, V](rt, opts...)
}

// NewFixedLinkedHashMap allocates an unprofiled LinkedHashMap-backed map.
func NewFixedLinkedHashMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedLinkedHashMap[K, V](rt, opts...)
}

// NewFixedSizeAdaptingMap allocates an unprofiled size-adapting map.
func NewFixedSizeAdaptingMap[K comparable, V comparable](rt *Runtime, opts ...Option) *Map[K, V] {
	return collections.NewFixedSizeAdaptingMap[K, V](rt, opts...)
}

// Kind identifies collection kinds (spec.Kind*).
type Kind = spec.Kind

// Advisor types: the rule-engine report.
type (
	// Report is a ranked suggestion report.
	Report = advisor.Report
	// Suggestion is one context's suggestions.
	Suggestion = advisor.Suggestion
	// AdvisorOptions configure report generation.
	AdvisorOptions = advisor.Options
)

// Rule-language types.
type (
	// RuleSet is an ordered list of selection rules.
	RuleSet = rules.RuleSet
	// Rule is one selection rule.
	Rule = rules.Rule
	// Params binds rule parameters.
	Params = rules.Params
)

// ParseRules parses rule text in the Fig. 4 language.
func ParseRules(src string) (*RuleSet, error) { return rules.Parse(src) }

// BuiltinRules returns the paper's Table 2 rule set.
func BuiltinRules() *RuleSet { return rules.Builtin() }

// ExtendedRules returns the builtin rules plus the opt-in extension rules
// (SinglyLinkedList, open addressing).
func ExtendedRules() *RuleSet { return rules.Extended() }

// Delta is one context's before/after comparison (§5.2 step 5).
type Delta = advisor.Delta

// Plan is a fixed per-context implementation assignment derived from a
// report (§3.3.2 "applied by the programmer (or by the tool)"); install it
// as Config.Selector on the next run.
type Plan = advisor.Plan

// NewPlan compiles a report's actionable suggestions into a Plan.
func NewPlan(rep *Report) *Plan { return advisor.NewPlan(rep) }

// Compare matches contexts between two snapshots and reports per-context
// gains sorted by descending gain.
func Compare(before, after []*Profile) []Delta { return advisor.Compare(before, after) }

// PrintRules renders a rule set in concrete syntax.
func PrintRules(rs *RuleSet) string { return rules.Print(rs) }

// Re-exported supporting types for advanced use.
type (
	// Heap is the simulated collection-aware heap.
	Heap = heap.Heap
	// SizeModel describes simulated object layout.
	SizeModel = heap.SizeModel
	// Footprint is the live/used/core byte triple.
	Footprint = heap.Footprint
	// Profiler is the semantic profiler.
	Profiler = profiler.Profiler
	// Profile is one context's finalized statistics.
	Profile = profiler.Profile
	// ContextMode selects context capture (Off/Static/Dynamic).
	ContextMode = alloctx.Mode
	// OnlineOptions tune the fully-automatic selector.
	OnlineOptions = adaptive.Options
	// Workload describes one evaluation workload.
	Workload = workloads.Spec
)

// Context-capture modes.
const (
	ContextOff     = alloctx.Off
	ContextStatic  = alloctx.Static
	ContextDynamic = alloctx.Dynamic
)

// Workloads lists the six paper benchmarks.
func Workloads() []Workload { return workloads.All() }
