package chameleon_test

import (
	"strings"
	"testing"

	"chameleon"
)

// TestPublicAPIEndToEnd drives the whole tool through the root package
// only: session, collections, report, rule language.
func TestPublicAPIEndToEnd(t *testing.T) {
	session := chameleon.NewSession(chameleon.Config{
		Mode:        chameleon.ContextStatic,
		GCThreshold: 16 << 10,
	})
	rt := session.Runtime()

	for i := 0; i < 60; i++ {
		m := chameleon.NewHashMap[string, int](rt, chameleon.At("api.Cache:1;api.Main:2"))
		m.Put("a", i)
		m.Put("b", i)
		for j := 0; j < 40; j++ {
			m.Get("a")
		}
		m.Free()
	}
	l := chameleon.NewLinkedList[int](rt, chameleon.At("api.Queue:9;api.Main:3"))
	for i := 0; i < 500; i++ {
		l.Add(i)
	}
	for i := 0; i < 200; i++ {
		_ = l.Get(i) // random access on a linked list
	}
	l.Free()
	session.FinalGC()

	rep, err := session.Report(chameleon.AdvisorOptions{MinPotential: -1})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Format()
	if !strings.Contains(text, "replace with ArrayMap") {
		t.Errorf("no ArrayMap suggestion:\n%s", text)
	}
	if !strings.Contains(text, "replace with ArrayList") {
		t.Errorf("no ArrayList suggestion for the random-access LinkedList:\n%s", text)
	}
}

func TestPublicRuleLanguage(t *testing.T) {
	rs, err := chameleon.ParseRules(`HashMap : maxSize < 8 -> ArrayMap "Space: small"`)
	if err != nil {
		t.Fatal(err)
	}
	printed := chameleon.PrintRules(rs)
	if !strings.Contains(printed, "HashMap : maxSize < 8 -> ArrayMap") {
		t.Fatalf("printed = %q", printed)
	}
	if len(chameleon.BuiltinRules().Rules) < 10 {
		t.Fatal("builtin rules missing")
	}
}

func TestPublicOnlineMode(t *testing.T) {
	session := chameleon.NewSession(chameleon.Config{
		Online:        true,
		OnlineOptions: chameleon.OnlineOptions{MinEvidence: 8},
	})
	rt := session.Runtime()
	for i := 0; i < 30; i++ {
		m := chameleon.NewHashMap[int, int](rt, chameleon.At("o:1"))
		m.Put(1, i)
		m.Free()
	}
	m := chameleon.NewHashMap[int, int](rt, chameleon.At("o:1"))
	if m.KindName() != "ArrayMap" {
		t.Fatalf("online replacement missing: %s", m.KindName())
	}
	m.Free()
}

func TestPublicWorkloads(t *testing.T) {
	ws := chameleon.Workloads()
	if len(ws) != 6 {
		t.Fatalf("workloads = %d", len(ws))
	}
	session := chameleon.NewSession(chameleon.Config{})
	if ws[0].Run(session.Runtime(), 0, 20) == 0 {
		t.Fatal("workload did nothing")
	}
}

func TestPublicCollectionsBehaviour(t *testing.T) {
	rt := (*chameleon.Runtime)(nil) // nil runtime: plain library use
	l := chameleon.NewArrayList[string](rt, chameleon.Cap(4))
	l.Add("x")
	l.Add("y")
	if l.Size() != 2 || l.Get(1) != "y" {
		t.Fatal("list broken")
	}
	s := chameleon.NewHashSet[int](rt)
	s.Add(1)
	if !s.Contains(1) || s.Contains(2) {
		t.Fatal("set broken")
	}
	it := l.Iterator()
	var got []string
	for it.HasNext() {
		got = append(got, it.Next())
	}
	if len(got) != 2 {
		t.Fatal("iterator broken")
	}
}

// The full profile -> plan -> re-run loop through the public API only.
func TestPublicPlanWorkflow(t *testing.T) {
	profileRun := func(plan *chameleon.Plan) (*chameleon.Session, uint64) {
		cfg := chameleon.Config{GCThreshold: 16 << 10}
		if plan != nil {
			cfg.Selector = plan
		}
		s := chameleon.NewSession(cfg)
		rt := s.Runtime()
		var sum uint64
		var maps []*chameleon.Map[int, int]
		for i := 0; i < 40; i++ {
			m := chameleon.NewHashMap[int, int](rt, chameleon.At("plan.api:1"))
			for k := 0; k < 5; k++ {
				m.Put(k, k*i)
			}
			for k := 0; k < 50; k++ {
				v, _ := m.Get(k % 5)
				sum += uint64(v)
			}
			maps = append(maps, m) // long-lived: the GC cycles see them
		}
		s.FinalGC()
		for _, m := range maps {
			m.Free()
		}
		return s, sum
	}
	before, sum1 := profileRun(nil)
	rep, err := before.Report(chameleon.AdvisorOptions{MinPotential: -1})
	if err != nil {
		t.Fatal(err)
	}
	plan := chameleon.NewPlan(rep)
	if plan.Len() == 0 {
		t.Fatalf("empty plan from:\n%s", rep.Format())
	}
	after, sum2 := profileRun(plan)
	if sum1 != sum2 {
		t.Fatal("plan changed behaviour")
	}
	// The planned run's collections are ArrayMaps now.
	deltas := chameleon.Compare(before.Prof.Snapshot(), after.Prof.Snapshot())
	if len(deltas) == 0 || deltas[0].Gain <= 0 {
		t.Fatalf("no gain from the plan: %+v", deltas)
	}
}

func TestPublicConstructorsAndExtendedRules(t *testing.T) {
	rt := (*chameleon.Runtime)(nil)
	sll := chameleon.NewSinglyLinkedList[int](rt)
	sll.Add(1)
	if sll.Get(0) != 1 {
		t.Fatal("singly-linked broken")
	}
	ohs := chameleon.NewOpenHashSet[int](rt)
	ohs.Add(2)
	if !ohs.Contains(2) {
		t.Fatal("open set broken")
	}
	ohm := chameleon.NewOpenHashMap[int, int](rt)
	ohm.Put(3, 30)
	if v, _ := ohm.Get(3); v != 30 {
		t.Fatal("open map broken")
	}
	if len(chameleon.ExtendedRules().Rules) <= len(chameleon.BuiltinRules().Rules) {
		t.Fatal("extended rules missing")
	}
	if chameleon.ContextOff.String() != "off" || chameleon.ContextDynamic.String() != "dynamic" {
		t.Fatal("context mode constants wrong")
	}
	var f chameleon.Footprint
	if f.Overhead() != 0 {
		t.Fatal("footprint zero value")
	}
	var m chameleon.SizeModel
	_ = m
}
